package disagg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
)

// DecodeConfig parameterizes a decode replica.
type DecodeConfig struct {
	// Addr is the wire listen address.
	Addr string
	// HTTPAddr is the health/metrics listen address; empty disables it.
	HTTPAddr string
	// NodeID names the node in handshakes; defaults to the wire address.
	NodeID string
	// Serve configures the wrapped continuous-batching runtime. Its
	// Spec/ModelSeed/Backend must match the prefill side, which the
	// handshake enforces.
	Serve serve.Config
	// MethodName is advertised in the handshake; defaults to "hack".
	MethodName string
	// DrainTimeout bounds the graceful Shutdown wait in Close and Drain
	// (default 30s).
	DrainTimeout time.Duration
	// FrameTimeout bounds each framed read inside a KV transfer and each
	// token write (default 10s) so a half-open router cannot wedge a
	// handler goroutine; the idle between-jobs read stays unbounded
	// because router connections are long-lived. Negative disables it.
	FrameTimeout time.Duration
}

// DecodeNode wraps a serve.Server behind the wire protocol: it adopts
// shipped KV caches, enters them into the continuous-batching decode
// loop via SubmitPrefilled, and streams tokens back. Remote requests
// batch with any locally-submitted ones.
type DecodeNode struct {
	cfg DecodeConfig
	rt  *serve.Server

	hello netsim.Hello
	ln    net.Listener
	http  *nodeHTTP

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	closed  chan struct{}
	closeMu sync.Once
	drainMu sync.Once
	wg      sync.WaitGroup
}

// NewDecodeNode builds the serving runtime, binds the listeners, and
// starts accepting wire connections.
func NewDecodeNode(cfg DecodeConfig) (*DecodeNode, error) {
	if cfg.MethodName == "" {
		cfg.MethodName = "hack"
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = defaultFrameTimeout
	}
	rt, err := serve.New(cfg.Serve)
	if err != nil {
		return nil, fmt.Errorf("disagg: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		rt.Shutdown(context.Background())
		return nil, fmt.Errorf("disagg: decode listen: %w", err)
	}
	d := &DecodeNode{cfg: cfg, rt: rt, ln: ln,
		conns: make(map[net.Conn]struct{}), closed: make(chan struct{})}
	if cfg.NodeID == "" {
		d.cfg.NodeID = ln.Addr().String()
	}
	spec := rt.Spec()
	d.hello = netsim.Hello{
		Role: "decode", NodeID: d.cfg.NodeID, Method: cfg.MethodName,
		ModelSeed: cfg.Serve.ModelSeed, SpecName: spec.Name, Vocab: spec.Vocab,
	}
	if cfg.HTTPAddr != "" {
		h, err := newNodeHTTP(cfg.HTTPAddr,
			func() any { return rt.Metrics() },
			func(w io.Writer) error { return rt.Metrics().WritePrometheus(w, "hackserved") },
			rt.Draining)
		if err != nil {
			ln.Close()
			rt.Shutdown(context.Background())
			return nil, err
		}
		d.http = h
		d.hello.HTTPAddr = h.Addr()
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Addr returns the node's wire address.
func (d *DecodeNode) Addr() string { return d.ln.Addr().String() }

// HTTPAddr returns the health/metrics address ("" when disabled).
func (d *DecodeNode) HTTPAddr() string {
	if d.http == nil {
		return ""
	}
	return d.http.Addr()
}

// Runtime exposes the wrapped serving runtime (for local submissions
// and metrics).
func (d *DecodeNode) Runtime() *serve.Server { return d.rt }

// Drain starts a graceful shutdown in the background: /healthz flips to
// 503 immediately (the runtime is draining), in-flight requests finish,
// and new wire submissions are refused with Kind "draining".
func (d *DecodeNode) Drain() {
	d.drainMu.Do(func() {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
			defer cancel()
			_ = d.rt.Shutdown(ctx)
		}()
	})
}

// Kill is the chaos path: it severs every wire connection and aborts
// the runtime immediately, like a process death. In-flight streams on
// the router side see a connection error and fail over.
func (d *DecodeNode) Kill() {
	d.closeMu.Do(func() { close(d.closed) })
	d.ln.Close()
	if d.http != nil {
		d.http.Close()
	}
	d.connMu.Lock()
	for c := range d.conns {
		c.Close()
	}
	d.connMu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: force-abort, don't drain
	_ = d.rt.Shutdown(ctx)
	d.wg.Wait()
}

// Close stops the listeners and shuts the runtime down.
func (d *DecodeNode) Close() error {
	d.closeMu.Do(func() { close(d.closed) })
	err := d.ln.Close()
	if d.http != nil {
		d.http.Close()
	}
	d.wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.DrainTimeout)
	defer cancel()
	_ = d.rt.Shutdown(ctx)
	return err
}

func (d *DecodeNode) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			select {
			case <-d.closed:
				return
			default:
				continue
			}
		}
		d.connMu.Lock()
		d.conns[conn] = struct{}{}
		d.connMu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				conn.Close()
				d.connMu.Lock()
				delete(d.conns, conn)
				d.connMu.Unlock()
			}()
			d.handleConn(conn)
		}()
	}
}

func (d *DecodeNode) checkPeer(h netsim.Hello) error {
	if h.Method != d.hello.Method || h.ModelSeed != d.hello.ModelSeed ||
		h.SpecName != d.hello.SpecName || h.Vocab != d.hello.Vocab {
		return fmt.Errorf("disagg: peer %s serves %s/%s seed %d, this node %s/%s seed %d",
			h.NodeID, h.Method, h.SpecName, h.ModelSeed,
			d.hello.Method, d.hello.SpecName, d.hello.ModelSeed)
	}
	return nil
}

// handleConn runs the responder handshake then serves decode jobs. Each
// connection carries one request at a time: MsgDecode, the KV frames,
// MsgTransferEnd, then the token stream back.
func (d *DecodeNode) handleConn(conn net.Conn) {
	_, err := netsim.AcceptHandshake(conn, d.hello, d.checkPeer)
	if err != nil {
		return
	}
	for {
		t, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			return
		}
		switch t {
		case netsim.MsgPing:
			if err := netsim.WriteMessage(conn, netsim.MsgPong, nil); err != nil {
				return
			}
		case netsim.MsgDecode:
			var job DecodeJob
			if err := jsonUnmarshal(payload, &job); err != nil {
				_ = writeJSON(conn, netsim.MsgDone, DoneMsg{Err: err.Error(), Kind: "bad_request"})
				return
			}
			if err := d.runJob(conn, job); err != nil {
				_ = writeJSON(conn, netsim.MsgDone, DoneMsg{Err: err.Error(), Kind: doneKind(err)})
				return
			}
		default:
			return
		}
	}
}

// doneKind classifies a terminal error so the router can map it back to
// a typed error instead of a string.
func doneKind(err error) string {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, serve.ErrDraining), errors.Is(err, serve.ErrDrained):
		return "draining"
	case errors.Is(err, netsim.ErrChecksum), errors.Is(err, netsim.ErrFrameCorrupt),
		errors.Is(err, netsim.ErrWireTimeout),
		errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		// The KV transfer itself broke — corrupt frames, a missed frame
		// deadline, a severed link. The request is fine, the link is not;
		// reporting "failed" here would terminally fail a request the
		// router could still serve through another replica.
		return "transfer"
	default:
		return "failed"
	}
}

// runJob collects the shipped KV frames, reconstructs the session, and
// streams the decode loop's tokens back over the connection.
func (d *DecodeNode) runJob(conn net.Conn, job DecodeJob) error {
	sess, firstTok, err := d.adoptCache(conn, job)
	if err != nil {
		return err
	}
	req := serve.Request{
		Prompt:       make([]int, job.PromptLen),
		MaxNewTokens: job.MaxNew,
		EOS:          job.EOS,
		Seed:         job.Seed,
	}
	st, err := d.rt.SubmitPrefilled(context.Background(), req, sess, firstTok)
	if err != nil {
		return err
	}
	n := 0
	for tok := range st.Tokens() {
		if err := writeJSONTimeout(conn, d.cfg.FrameTimeout, netsim.MsgToken, TokenMsg{Index: tok.Index, ID: tok.ID}); err != nil {
			return err
		}
		n++
	}
	if err := st.Err(); err != nil {
		return err
	}
	return writeJSON(conn, netsim.MsgDone, DoneMsg{Tokens: n})
}

// adoptCache reads the per-head KV frames until MsgTransferEnd and
// rebuilds the request's session: every (layer, head) slot must arrive
// exactly once, all frames must agree on the first token, and the
// backend must be a HACK instance (the only restorable kernel).
func (d *DecodeNode) adoptCache(conn net.Conn, job DecodeJob) (sess *model.Session, firstTok int, err error) {
	spec := d.rt.Spec()
	backend, err := d.rt.BackendFor(job.Seed)
	if err != nil {
		return nil, 0, err
	}
	hb, ok := backend.(*attention.HACKBackend)
	if !ok {
		return nil, 0, fmt.Errorf("disagg: backend %s cannot adopt a shipped cache", backend.Name())
	}
	heads := make([][]attention.Head, spec.Layers)
	for l := range heads {
		heads[l] = make([]attention.Head, spec.Heads)
	}
	got, want := 0, spec.Layers*spec.Heads
	first := -1
	for got < want {
		payload, err := readExpectTimeout(conn, d.cfg.FrameTimeout, netsim.MsgFrame)
		if err != nil {
			return nil, 0, err
		}
		var fr netsim.KVFrame
		if _, err := fr.ReadFrom(bytes.NewReader(payload)); err != nil {
			return nil, 0, err
		}
		if fr.RequestID != job.RequestID {
			return nil, 0, fmt.Errorf("disagg: frame for request %d inside transfer %d", fr.RequestID, job.RequestID)
		}
		l, h := int(fr.Layer), int(fr.Head)
		if l >= spec.Layers || h >= spec.Heads {
			return nil, 0, fmt.Errorf("disagg: frame (%d,%d) outside %d×%d grid", l, h, spec.Layers, spec.Heads)
		}
		if heads[l][h] != nil {
			return nil, 0, fmt.Errorf("disagg: duplicate frame for head (%d,%d)", l, h)
		}
		if first < 0 {
			first = int(fr.FirstToken)
		} else if int(fr.FirstToken) != first {
			return nil, 0, fmt.Errorf("disagg: frames disagree on first token (%d vs %d)", fr.FirstToken, first)
		}
		k, v, tail, err := fr.Tensors()
		if err != nil {
			return nil, 0, err
		}
		heads[l][h], err = hb.RestoreHead(spec.HeadDim, k, v, tail, fr.RNGDraws)
		if err != nil {
			return nil, 0, err
		}
		got++
	}
	if _, err := readExpectTimeout(conn, d.cfg.FrameTimeout, netsim.MsgTransferEnd); err != nil {
		return nil, 0, err
	}
	s, err := d.rt.Model().RestoreSession(backend, heads)
	if err != nil {
		return nil, 0, err
	}
	return s, first, nil
}
