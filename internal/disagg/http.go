package disagg

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"

	"github.com/hackkv/hack/internal/api"
)

// nodeHTTP is the per-node health/metrics endpoint the router polls:
// GET /healthz answers 200 ("ok") or 503 ("draining"), and GET /metrics
// serves the node's snapshot as JSON or, under content negotiation, in
// Prometheus text format (the same api.WantsPrometheus negotiation as
// every serving role's /metrics).
type nodeHTTP struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
}

// newNodeHTTP binds addr and starts serving. snapshot supplies the JSON
// metrics body; prom (optional) renders the Prometheus form; draining
// flips /healthz to 503.
func newNodeHTTP(addr string, snapshot func() any, prom func(io.Writer) error, draining func() bool) (*nodeHTTP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if draining != nil && draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if prom != nil && api.WantsPrometheus(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = prom(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snapshot())
	})
	h := &nodeHTTP{ln: ln, srv: &http.Server{Handler: mux}}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the bound address.
func (h *nodeHTTP) Addr() string { return h.ln.Addr().String() }

// Close stops the server.
func (h *nodeHTTP) Close() {
	h.once.Do(func() { h.srv.Close() })
}
