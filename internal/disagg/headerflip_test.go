package disagg

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
)

// The header bit-flip suite: corruption landing in the bytes *outside*
// a CRC's cover — a wire message's 5-byte head, a KV frame's 12-byte
// head — must degrade exactly like a checksum mismatch on every role.
// No request may fail terminally while a clean peer exists, and no node
// may wedge or crash.

// flipBit returns a copy of b with one bit flipped.
func flipBit(b []byte, off int, bit uint) []byte {
	out := append([]byte(nil), b...)
	out[off] ^= 1 << bit
	return out
}

// headerFlips enumerates the deterministic wire-message head flips: the
// type byte (caught by the CRC or the type check) and the length MSB's
// top bit (escapes the CRC entirely; only the length bound catches it).
var headerFlips = []struct {
	name string
	off  int
	bit  uint
}{
	{"type-byte", 0, 0},
	{"len-overflow", 4, 7},
}

// TestPrefillSurvivesHeaderBitFlips feeds a prefill node job frames with
// header bit-flips: each connection must be dropped without executing a
// job, and the node must keep serving clean connections.
func TestPrefillSurvivesHeaderBitFlips(t *testing.T) {
	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	job := PrefillJob{RequestID: 1, Prompt: []int{1, 2, 3}, Seed: 9}
	raw := wireFrame(t, netsim.MsgPrefill, mustJSON(t, job))

	for _, hf := range headerFlips {
		t.Run(hf.name, func(t *testing.T) {
			conn := dialHandshake(t, p.Addr())
			defer conn.Close()
			if _, err := conn.Write(flipBit(raw, hf.off, hf.bit)); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if mt, _, err := netsim.ReadMessage(conn); err == nil {
				t.Fatalf("prefill answered a header-flipped frame with %v", mt)
			}
		})
	}

	// The node is not wedged and none of the garbage executed a prefill.
	frames := pullFramesRaw(t, p.Addr(), job)
	if len(frames) == 0 {
		t.Fatal("clean prefill after header-flipped connections produced no frames")
	}
	if st := p.Stats(); st.Prefills != 1 {
		t.Fatalf("prefills %d, want 1 (header-flipped frames must not execute)", st.Prefills)
	}
}

// TestDecodeReportsTransferOnFrameHeadFlips ships a decode node a KV
// transfer whose first frame has a bit flipped inside the KVFrame's own
// 12-byte head (magic, version, length) — the wire message around it is
// valid, so only the frame-head parse can catch it. Each must surface
// as the retryable "transfer" done kind and leave the node serving.
func TestDecodeReportsTransferOnFrameHeadFlips(t *testing.T) {
	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := NewDecodeNode(DecodeConfig{
		Addr: "127.0.0.1:0", Serve: testServeConfig(), FrameTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	req := Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 4, Seed: 9}
	frames := pullFramesRaw(t, p.Addr(), PrefillJob{RequestID: 1, Prompt: req.Prompt, Seed: req.Seed})
	job := DecodeJob{RequestID: 1, PromptLen: len(req.Prompt), Seed: req.Seed, MaxNew: req.MaxNewTokens}

	frameFlips := []struct {
		name string
		off  int
		bit  uint
	}{
		{"magic", 0, 3},
		{"version", 4, 0},
		{"len-overflow", 11, 7},
	}
	for _, ff := range frameFlips {
		t.Run(ff.name, func(t *testing.T) {
			conn := dialHandshake(t, d.Addr())
			defer conn.Close()
			if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
				t.Fatal(err)
			}
			// A valid wire message carrying a head-flipped KVFrame.
			bad := flipBit(frames[0], ff.off, ff.bit)
			if err := netsim.WriteMessage(conn, netsim.MsgFrame, bad); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			mt, payload, err := netsim.ReadMessage(conn)
			if err != nil {
				t.Fatalf("reading decode's error report: %v", err)
			}
			if mt != netsim.MsgDone {
				t.Fatalf("decode answered %v, want %v", mt, netsim.MsgDone)
			}
			var done DoneMsg
			if err := jsonUnmarshal(payload, &done); err != nil {
				t.Fatal(err)
			}
			if done.Kind != "transfer" {
				t.Fatalf("frame-head flip %s reported kind %q, want \"transfer\"", ff.name, done.Kind)
			}
		})
	}

	// The node still serves a clean transfer afterwards.
	conn := dialHandshake(t, d.Addr())
	defer conn.Close()
	if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := netsim.WriteMessage(conn, netsim.MsgFrame, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := netsim.WriteMessage(conn, netsim.MsgTransferEnd, nil); err != nil {
		t.Fatal(err)
	}
	for {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		mt, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if mt == netsim.MsgDone {
			var done DoneMsg
			if err := jsonUnmarshal(payload, &done); err != nil {
				t.Fatal(err)
			}
			if done.Err != "" {
				t.Fatalf("clean decode after header flips failed: %s (%s)", done.Err, done.Kind)
			}
			break
		}
		if mt != netsim.MsgToken {
			t.Fatalf("unexpected %v in token stream", mt)
		}
	}
}

// TestRouterZeroFailuresUnderHeaderFlips runs the router leg of the
// sweep: a decode stub that poisons its token stream with a
// header-flipped message, and a prefill stub that answers the job pull
// with one. Both flips sit outside the CRC, so only the typed header
// classification makes them retryable — the router must fail over and
// deliver every stream byte-identical with zero failed requests.
func TestRouterZeroFailuresUnderHeaderFlips(t *testing.T) {
	req := Request{Prompt: []int{9, 8, 7, 6, 5, 4}, MaxNewTokens: 10, Seed: 42}
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := refTokens(t, ref, req)
	ref.Shutdown(context.Background())
	if len(want) < 4 {
		t.Fatalf("reference stream too short to split: %v", want)
	}

	t.Run("decode-stream", func(t *testing.T) {
		for _, hf := range headerFlips {
			t.Run(hf.name, func(t *testing.T) {
				prefix := []TokenMsg{{0, want[0]}, {1, want[1]}}
				finale := func(conn net.Conn) {
					full := wireFrame(t, netsim.MsgToken, mustJSON(t, TokenMsg{Index: 2, ID: want[2]}))
					conn.Write(flipBit(full, hf.off, hf.bit))
				}
				stub, stopStub := corruptingStub(t, prefix, finale)
				defer stopStub()
				p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				r, err := NewRouter(RouterConfig{
					Prefills: []string{p.Addr()}, Decodes: []string{stub, d.Addr()},
					ModelSeed: testModelSeed, HealthInterval: time.Hour,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()

				st, err := r.Submit(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				got, err := collectRouted(st)
				if err != nil {
					t.Fatalf("header flip failed the request: %v", err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("failover stream diverged:\ngot  %v\nwant %v", got, want)
				}
				rep := r.Report()
				if rep.Failed != 0 {
					t.Fatalf("%d requests failed", rep.Failed)
				}
				if rep.Failovers != 1 {
					t.Fatalf("failovers %d, want 1", rep.Failovers)
				}
			})
		}
	})

	t.Run("prefill-pull", func(t *testing.T) {
		for _, hf := range headerFlips {
			t.Run(hf.name, func(t *testing.T) {
				// A prefill stub that answers the job with a header-flipped
				// frame message.
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer ln.Close()
				hello := netsim.Hello{Role: "prefill", NodeID: "flip-prefill", Method: "hack",
					ModelSeed: testModelSeed, SpecName: model.Toy().Name, Vocab: model.Toy().Vocab}
				flip := hf
				go func() {
					for {
						conn, err := ln.Accept()
						if err != nil {
							return
						}
						go func() {
							defer conn.Close()
							if _, err := netsim.AcceptHandshake(conn, hello, nil); err != nil {
								return
							}
							if _, _, err := netsim.ReadMessage(conn); err != nil {
								return
							}
							var buf bytes.Buffer
							_ = netsim.WriteMessage(&buf, netsim.MsgFrame, []byte("payload"))
							conn.Write(flipBit(buf.Bytes(), flip.off, flip.bit))
						}()
					}
				}()

				p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()

				// The flipping stub is first in round-robin order.
				r, err := NewRouter(RouterConfig{
					Prefills: []string{ln.Addr().String(), p.Addr()}, Decodes: []string{d.Addr()},
					ModelSeed: testModelSeed, HealthInterval: time.Hour,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()

				st, err := r.Submit(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				got, err := collectRouted(st)
				if err != nil {
					t.Fatalf("header-flipped prefill pull failed the request: %v", err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("stream diverged:\ngot  %v\nwant %v", got, want)
				}
				if rep := r.Report(); rep.Failed != 0 {
					t.Fatalf("%d requests failed", rep.Failed)
				}
			})
		}
	})
}
