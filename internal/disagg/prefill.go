package disagg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
)

// PrefillConfig parameterizes a prefill node.
type PrefillConfig struct {
	// Addr is the wire listen address ("127.0.0.1:0" for an ephemeral
	// loopback port).
	Addr string
	// HTTPAddr is the health/metrics listen address; empty disables the
	// HTTP endpoint.
	HTTPAddr string
	// NodeID names the node in handshakes; defaults to the wire address.
	NodeID string
	// Spec/ModelSeed build the numeric transformer — they must match the
	// decode side exactly, which the handshake enforces.
	Spec      model.Spec
	ModelSeed int64
	// Backend builds the per-request attention backend from the request
	// seed; nil selects the paper's shipping HACK configuration. Heads
	// must implement attention.WireExporter (HACK with RQE); others are
	// refused per request.
	Backend serve.BackendFactory
	// MethodName is advertised in the handshake so mismatched deployments
	// refuse to pair; defaults to "hack".
	MethodName string
	// MaxConcurrent bounds simultaneous prefill executions (default 2).
	MaxConcurrent int
	// FrameTimeout bounds each KV frame write (default 10s) so a
	// half-open router cannot wedge a prefill handler goroutine; the
	// idle between-jobs read stays unbounded. Negative disables it.
	FrameTimeout time.Duration
}

// PrefillStats counts a prefill node's work.
type PrefillStats struct {
	Prefills   int64 `json:"prefills"`
	Failures   int64 `json:"failures"`
	FramesSent int64 `json:"frames_sent"`
	KVBytes    int64 `json:"kv_bytes_sent"`
}

// PrefillNode executes prefills and ships quantized KV caches. Create
// with NewPrefillNode (which starts listening) and stop with Close.
type PrefillNode struct {
	cfg     PrefillConfig
	m       *model.Transformer
	backend serve.BackendFactory
	hello   netsim.Hello

	ln   net.Listener
	http *nodeHTTP
	sem  chan struct{}

	prefills atomic.Int64
	failures atomic.Int64
	frames   atomic.Int64
	kvBytes  atomic.Int64

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// NewPrefillNode builds the transformer, binds the listeners, and starts
// accepting connections.
func NewPrefillNode(cfg PrefillConfig) (*PrefillNode, error) {
	if cfg.Spec.Layers == 0 && cfg.Spec.Hidden == 0 {
		cfg.Spec = model.Toy()
	}
	if cfg.Backend == nil {
		cfg.Backend = func(seed int64) (attention.Backend, error) {
			return attention.NewHACK(attention.DefaultHACKConfig(seed))
		}
	}
	if cfg.MethodName == "" {
		cfg.MethodName = "hack"
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = defaultFrameTimeout
	}
	m, err := model.NewTransformer(cfg.Spec, cfg.ModelSeed)
	if err != nil {
		return nil, fmt.Errorf("disagg: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("disagg: prefill listen: %w", err)
	}
	p := &PrefillNode{
		cfg: cfg, m: m, backend: cfg.Backend,
		ln:     ln,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		closed: make(chan struct{}),
	}
	if cfg.NodeID == "" {
		cfg.NodeID = ln.Addr().String()
		p.cfg.NodeID = cfg.NodeID
	}
	p.hello = netsim.Hello{
		Role: "prefill", NodeID: cfg.NodeID, Method: cfg.MethodName,
		ModelSeed: cfg.ModelSeed, SpecName: cfg.Spec.Name, Vocab: cfg.Spec.Vocab,
	}
	if cfg.HTTPAddr != "" {
		h, err := newNodeHTTP(cfg.HTTPAddr, func() any { return p.Stats() },
			p.writeProm, func() bool { return false })
		if err != nil {
			ln.Close()
			return nil, err
		}
		p.http = h
		p.hello.HTTPAddr = h.Addr()
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the node's wire address.
func (p *PrefillNode) Addr() string { return p.ln.Addr().String() }

// HTTPAddr returns the health/metrics address ("" when disabled).
func (p *PrefillNode) HTTPAddr() string {
	if p.http == nil {
		return ""
	}
	return p.http.Addr()
}

// Stats returns the node's work counters.
func (p *PrefillNode) Stats() PrefillStats {
	return PrefillStats{
		Prefills:   p.prefills.Load(),
		Failures:   p.failures.Load(),
		FramesSent: p.frames.Load(),
		KVBytes:    p.kvBytes.Load(),
	}
}

// writeProm renders the node's counters in Prometheus text format.
func (p *PrefillNode) writeProm(w io.Writer) error {
	st := p.Stats()
	var err error
	emit := func(name, help string, v int64) {
		if err == nil {
			_, err = fmt.Fprintf(w,
				"# HELP hackserved_prefill_%s %s\n# TYPE hackserved_prefill_%s counter\nhackserved_prefill_%s %d\n",
				name, help, name, name, v)
		}
	}
	emit("prefills_total", "Prefills executed.", st.Prefills)
	emit("failures_total", "Prefill jobs that failed.", st.Failures)
	emit("frames_sent_total", "KV frames shipped.", st.FramesSent)
	emit("kv_bytes_sent_total", "Framed KV bytes shipped.", st.KVBytes)
	return err
}

// Close stops the listeners and waits for in-flight connections.
func (p *PrefillNode) Close() error {
	p.closeMu.Do(func() { close(p.closed) })
	err := p.ln.Close()
	if p.http != nil {
		p.http.Close()
	}
	p.wg.Wait()
	return err
}

func (p *PrefillNode) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
				continue
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer conn.Close()
			p.handleConn(conn)
		}()
	}
}

// handleConn runs the responder handshake then serves prefill jobs until
// the peer disconnects.
func (p *PrefillNode) handleConn(conn net.Conn) {
	_, err := netsim.AcceptHandshake(conn, p.hello, p.checkPeer)
	if err != nil {
		return
	}
	for {
		t, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			return // EOF or broken peer: connection is per-session state only
		}
		switch t {
		case netsim.MsgPing:
			if err := netsim.WriteMessage(conn, netsim.MsgPong, nil); err != nil {
				return
			}
		case netsim.MsgPrefill:
			var job PrefillJob
			if err := unmarshalStrictPrompt(payload, &job); err != nil {
				p.failures.Add(1)
				_ = writeJSON(conn, netsim.MsgDone, DoneMsg{Err: err.Error(), Kind: "bad_request"})
				return
			}
			if err := p.runJob(conn, job); err != nil {
				p.failures.Add(1)
				// Best-effort error report; the conn may already be dead.
				_ = writeJSON(conn, netsim.MsgDone, DoneMsg{Err: err.Error(), Kind: "failed"})
				return
			}
		default:
			return
		}
	}
}

// checkPeer enforces deployment compatibility at connect time.
func (p *PrefillNode) checkPeer(h netsim.Hello) error {
	if h.Method != p.hello.Method || h.ModelSeed != p.hello.ModelSeed ||
		h.SpecName != p.hello.SpecName || h.Vocab != p.hello.Vocab {
		return fmt.Errorf("disagg: peer %s serves %s/%s seed %d, this node %s/%s seed %d",
			h.NodeID, h.Method, h.SpecName, h.ModelSeed,
			p.hello.Method, p.hello.SpecName, p.hello.ModelSeed)
	}
	return nil
}

// runJob executes one prefill and streams the per-head KV frames,
// terminated by MsgTransferEnd.
func (p *PrefillNode) runJob(conn net.Conn, job PrefillJob) error {
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-p.closed:
		return errors.New("disagg: prefill node closing")
	}
	for i, tok := range job.Prompt {
		if tok < 0 || tok >= p.cfg.Spec.Vocab {
			return fmt.Errorf("disagg: prompt token %d at %d outside vocab [0, %d)", tok, i, p.cfg.Spec.Vocab)
		}
	}
	backend, err := p.backend(job.Seed)
	if err != nil {
		return err
	}
	sess, err := p.m.NewSession(backend)
	if err != nil {
		return err
	}
	firstTok, err := sess.Prefill(job.Prompt)
	if err != nil {
		return err
	}
	p.prefills.Add(1)

	for l := 0; l < p.cfg.Spec.Layers; l++ {
		for h := 0; h < p.cfg.Spec.Heads; h++ {
			exp, ok := sess.Head(l, h).(attention.WireExporter)
			if !ok {
				return fmt.Errorf("disagg: backend %s does not export its cache", backend.Name())
			}
			k, v, tail, draws, err := exp.ExportWire()
			if err != nil {
				return err
			}
			fr, err := netsim.FrameFromTensors(job.RequestID, l, h, firstTok, k, v, tail.Data)
			if err != nil {
				return err
			}
			fr.RNGDraws = draws
			var buf frameBuffer
			if _, err := fr.WriteTo(&buf); err != nil {
				return err
			}
			if err := netsim.WriteMessageTimeout(conn, p.cfg.FrameTimeout, netsim.MsgFrame, buf.b); err != nil {
				return err
			}
			p.frames.Add(1)
			p.kvBytes.Add(int64(len(buf.b)))
		}
	}
	return netsim.WriteMessageTimeout(conn, p.cfg.FrameTimeout, netsim.MsgTransferEnd, nil)
}

// frameBuffer is a minimal io.Writer collecting a frame's bytes.
type frameBuffer struct{ b []byte }

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// unmarshalStrictPrompt decodes a PrefillJob and validates basics.
func unmarshalStrictPrompt(payload []byte, job *PrefillJob) error {
	if err := jsonUnmarshal(payload, job); err != nil {
		return err
	}
	if len(job.Prompt) == 0 {
		return errors.New("disagg: empty prompt")
	}
	return nil
}

// jsonUnmarshal is split out for testability of corrupt payloads.
func jsonUnmarshal(payload []byte, v any) error {
	return json.Unmarshal(payload, v)
}
