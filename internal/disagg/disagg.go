// Package disagg executes the paper's actual deployment scenario: true
// disaggregated serving, with prefill and decode running in different
// processes connected by a real TCP wire. Where package sim prices the
// prefill→decode KV transfer and package serve batches both phases in
// one process, disagg splits them:
//
//   - A PrefillNode runs the kernel prefill over the real numeric
//     transformer and ships each head's quantized KV cache as netsim
//     KVFrames — the same codec the simulator prices — over a
//     length-prefixed, CRC-trailed message stream with a versioned
//     handshake.
//   - A DecodeNode reconstructs the cache (quant.FromWire, RNG
//     fast-forward) and feeds the request into serve's continuous-
//     batching decode loop via SubmitPrefilled, so remote requests batch
//     with local ones.
//   - A Router fronts N decode replicas with FlowKV-style load-aware
//     placement (the same drain/pending-KV signals sim's schedulers
//     score), tracks replica health via /healthz heartbeats and
//     connection-level failures, removes draining replicas from
//     placement, and retries an in-flight KV transfer on replica death
//     with bounded backoff.
//
// Because the prefill side counts its quantizer RNG draws and ships them
// in v2 frames, a disaggregated deployment streams tokens byte-identical
// to the single-process runtime for the same (prompt, seed) — stochastic
// rounding included. That identity is the package's core invariant and
// is what the loopback integration tests assert.
package disagg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/netsim"
)

// defaultFrameTimeout bounds one framed read or write inside a transfer
// or token stream when the config leaves FrameTimeout zero. It is the
// half-open-peer guard: without it a peer that stops mid-frame wedges
// the transfer goroutine forever.
const defaultFrameTimeout = 10 * time.Second

// Typed terminal errors a router surfaces to clients.
var (
	// ErrNoPrefill means no healthy prefill node could be reached.
	ErrNoPrefill = errors.New("disagg: no healthy prefill node")
	// ErrNoReplicas means no healthy, non-draining decode replica was
	// available for placement.
	ErrNoReplicas = errors.New("disagg: no healthy decode replica")
	// ErrTransferFailed means the KV transfer (or the decode stream after
	// it) failed on every retry attempt.
	ErrTransferFailed = errors.New("disagg: transfer failed after retries")
)

// PrefillJob asks a prefill node to run one request's prefill and ship
// the resulting KV cache (MsgPrefill payload).
type PrefillJob struct {
	RequestID uint64 `json:"request_id"`
	Prompt    []int  `json:"prompt"`
	Seed      int64  `json:"seed"`
}

// DecodeJob asks a decode replica to adopt a shipped KV cache and run
// the decode phase (MsgDecode payload). The frames that follow carry the
// cache itself plus the prefill-stage first token.
type DecodeJob struct {
	RequestID uint64 `json:"request_id"`
	PromptLen int    `json:"prompt_len"`
	Seed      int64  `json:"seed"`
	MaxNew    int    `json:"max_new_tokens,omitempty"`
	EOS       int    `json:"eos,omitempty"`
}

// TokenMsg is one streamed token (MsgToken payload).
type TokenMsg struct {
	Index int `json:"index"`
	ID    int `json:"id"`
}

// DoneMsg terminates a request's stream (MsgDone payload). Err is empty
// for a natural finish; Kind classifies failures so the router can map
// them back to typed errors ("queue_full", "draining", "failed").
type DoneMsg struct {
	Tokens int    `json:"tokens"`
	Err    string `json:"err,omitempty"`
	Kind   string `json:"kind,omitempty"`
}

// writeJSON frames one JSON-payload message.
func writeJSON(w io.Writer, t netsim.MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return netsim.WriteMessage(w, t, payload)
}

// writeJSONTimeout is writeJSON under a per-frame write deadline.
func writeJSONTimeout(conn net.Conn, d time.Duration, t netsim.MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return netsim.WriteMessageTimeout(conn, d, t, payload)
}

// readExpect reads one message and requires the given type, answering
// keepalive pings transparently.
func readExpect(rw io.ReadWriter, want netsim.MsgType) ([]byte, error) {
	for {
		t, payload, err := netsim.ReadMessage(rw)
		if err != nil {
			return nil, err
		}
		if t == netsim.MsgPing {
			if err := netsim.WriteMessage(rw, netsim.MsgPong, nil); err != nil {
				return nil, err
			}
			continue
		}
		if t != want {
			return nil, fmt.Errorf("disagg: got %v, want %v", t, want)
		}
		return payload, nil
	}
}

// readExpectTimeout is readExpect with each framed read bounded by d —
// used inside transfers, where the peer owes the next frame promptly
// and a stall means the link or peer is wedged.
func readExpectTimeout(conn net.Conn, d time.Duration, want netsim.MsgType) ([]byte, error) {
	for {
		t, payload, err := netsim.ReadMessageTimeout(conn, d)
		if err != nil {
			return nil, err
		}
		if t == netsim.MsgPing {
			if err := netsim.WriteMessage(conn, netsim.MsgPong, nil); err != nil {
				return nil, err
			}
			continue
		}
		if t != want {
			return nil, fmt.Errorf("disagg: got %v, want %v", t, want)
		}
		return payload, nil
	}
}

// dial connects with a deadline and runs the initiator handshake.
func dial(addr string, self netsim.Hello, timeout time.Duration) (net.Conn, netsim.Hello, error) {
	return dialWith(nil, addr, self, timeout)
}

// dialWith is dial through an injectable dialer (nil means the real
// network) — the hook fault-injection harnesses use to interpose
// chaos.Conn on every link a node opens.
func dialWith(dialer chaos.Dialer, addr string, self netsim.Hello, timeout time.Duration) (net.Conn, netsim.Hello, error) {
	if dialer == nil {
		dialer = func(network, a string, t time.Duration) (net.Conn, error) {
			return net.DialTimeout(network, a, t)
		}
	}
	conn, err := dialer("tcp", addr, timeout)
	if err != nil {
		return nil, netsim.Hello{}, err
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	peer, err := netsim.Handshake(conn, self)
	if err != nil {
		conn.Close()
		return nil, netsim.Hello{}, err
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, peer, nil
}
