package disagg

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/serve"
	"github.com/hackkv/hack/internal/workload"
)

// newChaosCluster mirrors newCluster but wires a fault injector into the
// router and returns an explicit close instead of t.Cleanup, so tests
// can tear the deployment down before their goroutine-leak check. The
// router is tuned for fast chaos recovery: short frame deadlines, tight
// backoff, budget-only retries.
func newChaosCluster(t *testing.T, nDecode int, inj *chaos.Injector, tweak func(*RouterConfig)) (*cluster, func()) {
	t.Helper()
	p, err := NewPrefillNode(PrefillConfig{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", ModelSeed: testModelSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{prefill: p}
	closers := []func(){func() { p.Close() }}
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	rc := RouterConfig{
		Prefills:        []string{p.Addr()},
		ModelSeed:       testModelSeed,
		HTTPAddr:        "127.0.0.1:0",
		HealthInterval:  10 * time.Millisecond,
		FrameTimeout:    500 * time.Millisecond,
		RetryBackoff:    5 * time.Millisecond,
		RetryMax:        -1, // the scripts outlast a fixed count: budget-only
		RetryBudget:     10 * time.Second,
		BreakerCooldown: 50 * time.Millisecond,
		Chaos:           inj,
	}
	for i := 0; i < nDecode; i++ {
		d, err := NewDecodeNode(DecodeConfig{
			Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", Serve: testServeConfig(),
		})
		if err != nil {
			closeAll()
			t.Fatal(err)
		}
		c.decodes = append(c.decodes, d)
		closers = append(closers, func() { d.Close() })
		rc.Decodes = append(rc.Decodes, d.Addr())
	}
	if tweak != nil {
		tweak(&rc)
	}
	r, err := NewRouter(rc)
	if err != nil {
		closeAll()
		t.Fatal(err)
	}
	c.router = r
	closers = append(closers, func() { r.Close() })
	return c, closeAll
}

// applyChaosAction binds a script's action vocabulary to a live cluster:
// kills land on the DecodeNode process, everything else lands on the
// router's links through the injector.
func applyChaosAction(c *cluster, inj *chaos.Injector) func(chaos.Action) {
	linkAddrs := func(target int) []string {
		if target < 0 {
			addrs := []string{c.prefill.Addr()}
			for _, d := range c.decodes {
				addrs = append(addrs, d.Addr())
			}
			return addrs
		}
		if target < len(c.decodes) {
			return []string{c.decodes[target].Addr()}
		}
		return nil
	}
	return func(a chaos.Action) {
		switch a.Kind {
		case chaos.ActKillDecode:
			if a.Target >= 0 && a.Target < len(c.decodes) {
				c.decodes[a.Target].Kill()
			}
		case chaos.ActDegradeLink, chaos.ActCorruptFrame:
			if a.Target < 0 {
				inj.SetDefaultPlan(a.Plan)
				return
			}
			for _, addr := range linkAddrs(a.Target) {
				inj.SetPlan(addr, a.Plan)
			}
		case chaos.ActPartition:
			for _, addr := range linkAddrs(a.Target) {
				inj.SetPlan(addr, chaos.Plan{Partition: true})
			}
		case chaos.ActHeal:
			inj.Heal()
		}
	}
}

// replayRound pushes the request set through the router (concurrently or
// sequentially) and requires every stream to match its precomputed
// reference byte-for-byte — the zero-dropped, zero-duplicated invariant.
func replayRound(t *testing.T, r *Router, reqs []Request, want [][]int, sequential bool) {
	t.Helper()
	got := make([][]int, len(reqs))
	errs := make([]error, len(reqs))
	run := func(i int) {
		st, err := r.Submit(context.Background(), reqs[i])
		if err != nil {
			errs[i] = err
			return
		}
		got[i], errs[i] = collectRouted(st)
	}
	if sequential {
		for i := range reqs {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	}
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d failed under chaos: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d tokens under chaos, reference %d\ngot  %v\nwant %v",
				i, len(got[i]), len(want[i]), got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d diverged under chaos: got %d want %d\ngot  %v\nwant %v",
					i, j, got[i][j], want[i][j], got[i], want[i])
			}
		}
	}
}

func waitReplicaBreakerClosed(t *testing.T, r *Router, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rs := range r.Report().Replicas {
			if rs.Addr == addr && rs.Breaker.State == "closed" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s breaker never closed after heal: %+v", addr, r.Report().Replicas)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosScriptsZeroTokenLoss is the scripted chaos harness: every
// registered fault script replays against a router + 1 prefill +
// 2 decode loopback deployment while a workload streams through it.
// Under every script, every stream must stay byte-identical to the
// fault-free single-process reference (no dropped or duplicated
// tokens), no request may fail, recovery must be bounded (a post-heal
// round completes, and for partitions the tripped breaker re-closes),
// and the deployment must not leak goroutines.
func TestChaosScriptsZeroTokenLoss(t *testing.T) {
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Shutdown(context.Background())
	vocab := model.Toy().Vocab

	for _, name := range chaos.Scripts() {
		script, err := chaos.ScriptNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			// corrupt-frame needs prompts long enough that one transfer
			// crosses the script's corruption cadence, submitted
			// sequentially so the first attempt deterministically lands on
			// the corrupted replica-0 link. The other scripts replay a
			// concurrent workload trace.
			var reqs []Request
			sequential := false
			if name == "corrupt-frame" {
				sequential = true
				for i := 0; i < 3; i++ {
					prompt := make([]int, 16)
					for j := range prompt {
						prompt[j] = (i*5 + j*3 + 1) % vocab
					}
					reqs = append(reqs, Request{Prompt: prompt, MaxNewTokens: 6, Seed: int64(40 + i)})
				}
			} else {
				reqs = scenarioRequests(t, 3, workload.IMDb(), 6)
			}
			want := make([][]int, len(reqs))
			for i, req := range reqs {
				want[i] = refTokens(t, ref, req)
			}

			var tweak func(*RouterConfig)
			if name == "kill-decode" {
				// No health polling: the kill is discovered by failed
				// dials alone, guaranteeing the retry path runs.
				tweak = func(rc *RouterConfig) { rc.HealthInterval = time.Hour }
			}

			before := runtime.NumGoroutine()
			func() {
				inj := chaos.NewInjector(7)
				c, closeAll := newChaosCluster(t, 2, inj, tweak)
				defer closeAll()

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				playDone := make(chan struct{})
				go func() {
					defer close(playDone)
					_ = script.Play(ctx, applyChaosAction(c, inj))
				}()

				// Keep rounds flowing for the script's whole timeline so
				// every event lands on live traffic.
				rounds := 0
				for {
					replayRound(t, c.router, reqs, want, sequential)
					rounds++
					select {
					case <-playDone:
					default:
						continue
					}
					if rounds >= 2 {
						break
					}
				}
				// Bounded recovery: the fabric has healed; one more round
				// must pass cleanly.
				replayRound(t, c.router, reqs, want, sequential)

				rep := c.router.Report()
				if rep.Failed != 0 {
					t.Fatalf("%d requests failed under %s", rep.Failed, name)
				}
				if total := int64((rounds + 1) * len(reqs)); rep.Completed != total {
					t.Fatalf("completed %d requests, want %d", rep.Completed, total)
				}
				if rep.Chaos == nil {
					t.Fatal("chaos stats missing from the router report")
				}

				st := inj.Stats()
				switch name {
				case "kill-decode":
					if rep.Retries == 0 {
						t.Fatal("replica kill triggered no retries")
					}
				case "degrade-kv-link":
					if st.OpsDelayed == 0 {
						t.Fatal("latency plan delayed no operations")
					}
				case "partition-heal":
					if st.DialsRefused == 0 {
						t.Fatal("partition refused no dials")
					}
					// Recovery is observable, not just survivable: the
					// health monitor's out-of-band probe re-closes the
					// partitioned replica's breaker.
					waitReplicaBreakerClosed(t, c.router, c.decodes[0].Addr())
					// Breaker and chaos state surface on /metrics.
					resp, err := http.Get("http://" + c.router.HTTPAddr() + "/metrics?format=text")
					if err != nil {
						t.Fatal(err)
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					for _, series := range []string{"breaker_state{replica=", "breaker_trips_total", "chaos_dials_refused_total"} {
						if !strings.Contains(string(body), series) {
							t.Fatalf("router /metrics missing %q:\n%s", series, body)
						}
					}
				case "corrupt-frame":
					if st.BytesCorrupted == 0 {
						t.Fatal("corruption plan flipped no bytes")
					}
					if rep.Retries == 0 {
						t.Fatal("corrupted frames triggered no retries")
					}
				}
			}()

			// Everything is closed: no goroutine may outlive the deployment.
			deadline := time.Now().Add(5 * time.Second)
			for {
				runtime.GC()
				if n := runtime.NumGoroutine(); n <= before+2 {
					return
				}
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<16)
					t.Fatalf("goroutines leaked under %s: %d before, %d after\n%s",
						name, before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}
