package disagg

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
)

// pausingStub is a stub decode replica that streams a token prefix,
// then blocks until released, then drops the connection — so a test
// can interleave router mutations with a provably in-flight stream.
func pausingStub(t *testing.T, tokens []TokenMsg, release <-chan struct{}) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hello := netsim.Hello{Role: "decode", NodeID: "pausing-stub", Method: "hack",
		ModelSeed: testModelSeed, SpecName: model.Toy().Name, Vocab: model.Toy().Vocab}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := netsim.AcceptHandshake(conn, hello, nil); err != nil {
					return
				}
				for {
					mt, _, err := netsim.ReadMessage(conn)
					if err != nil {
						return // health probes just close
					}
					if mt == netsim.MsgTransferEnd {
						break
					}
				}
				for _, tok := range tokens {
					if err := writeJSON(conn, netsim.MsgToken, tok); err != nil {
						return
					}
				}
				<-release
				// Die mid-stream: no MsgDone, just a severed connection.
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestRemoveReplicaMidStream is the regression for RemoveReplica racing
// an in-flight tryDecode: the replica is deregistered while it is still
// streaming, then dies; the router must fail over to the remaining
// replica and deliver every token exactly once — no drop, no duplicate,
// no double-finished stream.
func TestRemoveReplicaMidStream(t *testing.T) {
	req := Request{Prompt: []int{3, 1, 4, 1, 5}, MaxNewTokens: 10, Seed: 17}
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := refTokens(t, ref, req)
	ref.Shutdown(context.Background())
	if len(want) < 4 {
		t.Fatalf("reference stream too short to split: %v", want)
	}

	release := make(chan struct{})
	prefix := []TokenMsg{{0, want[0]}, {1, want[1]}, {2, want[2]}}
	stub, stopStub := pausingStub(t, prefix, release)
	defer stopStub()

	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// The stub registers first: equal load scores place attempt one on it.
	r, err := NewRouter(RouterConfig{
		Prefills: []string{p.Addr()}, Decodes: []string{stub, d.Addr()},
		ModelSeed: testModelSeed, HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	st, err := r.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for tok := range st.Tokens() {
		if tok.Index != len(got) {
			t.Fatalf("token index %d at position %d (dropped or duplicated)", tok.Index, len(got))
		}
		got = append(got, tok.ID)
		if len(got) == len(prefix) {
			// The stub is mid-stream and paused: deregister it while its
			// tryDecode is provably in flight, then let it die.
			r.RemoveReplica(stub)
			close(release)
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d\ngot  %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged: got %d want %d\ngot  %v\nwant %v", i, got[i], want[i], got, want)
		}
	}
	rep := r.Report()
	if rep.Completed != 1 || rep.Failed != 0 {
		t.Fatalf("completed %d failed %d, want 1/0", rep.Completed, rep.Failed)
	}
	if rep.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", rep.Failovers)
	}
	if len(rep.Replicas) != 1 || rep.Replicas[0].Addr != d.Addr() {
		t.Fatalf("replica set after removal: %+v", rep.Replicas)
	}
}

// TestSubmitCloseRace hammers Submit against Close: the closed-check
// and the waitgroup registration must be atomic, or a Submit landing in
// the window panics the waitgroup Close is waiting on. Run under -race.
func TestSubmitCloseRace(t *testing.T) {
	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 8; round++ {
		r, err := NewRouter(RouterConfig{
			Prefills: []string{p.Addr()}, Decodes: []string{d.Addr()},
			ModelSeed: testModelSeed, HealthInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					st, err := r.Submit(context.Background(),
						Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 2, Seed: int64(g*100 + i)})
					if err != nil {
						return // router closed: the only acceptable refusal
					}
					for range st.Tokens() {
					}
				}
			}(g)
		}
		close(start)
		r.Close() // races the submitters by design
		wg.Wait()
	}
}
