// Package compress implements the KV bitstream codecs of the comparison
// systems: a CacheGen-style entropy-coded format (adaptive arithmetic
// coding over quantized code symbols, which are heavily skewed toward
// central codes for Gaussian-distributed KV values) and the raw packed
// format used by KVQuant-style quantizers. The codecs give the wire-size
// numbers that the transfer model prices.
package compress

import (
	"errors"
	"fmt"
)

// Arithmetic coding with 32-bit registers and an adaptive order-0
// frequency model, after Witten/Neal/Cleary (CACM 1987). Symbols are
// b-bit quantization codes, so the alphabet is at most 256.

const (
	codeBits  = 32
	topValue  = (uint64(1) << codeBits) - 1
	firstQtr  = topValue/4 + 1
	halfValue = 2 * firstQtr
	thirdQtr  = 3 * firstQtr
	maxTotal  = uint64(1) << 29 // rescale threshold for frequency counts
)

// freqModel is an adaptive order-0 model over nsym symbols.
type freqModel struct {
	freq []uint64
	cum  []uint64 // cum[i] = Σ freq[j<i]; cum[nsym] = total
}

func newFreqModel(nsym int) *freqModel {
	m := &freqModel{freq: make([]uint64, nsym), cum: make([]uint64, nsym+1)}
	for i := range m.freq {
		m.freq[i] = 1
	}
	m.rebuild()
	return m
}

func (m *freqModel) rebuild() {
	var c uint64
	for i, f := range m.freq {
		m.cum[i] = c
		c += f
	}
	m.cum[len(m.freq)] = c
}

func (m *freqModel) total() uint64 { return m.cum[len(m.freq)] }

func (m *freqModel) update(sym int) {
	m.freq[sym] += 32
	if m.total()+32 >= maxTotal {
		for i := range m.freq {
			m.freq[i] = (m.freq[i] + 1) / 2
		}
	}
	m.rebuild()
}

// bitWriter emits single bits into a byte slice, MSB first.
type bitWriter struct {
	buf  []byte
	cur  byte
	nbit int
}

func (w *bitWriter) writeBit(b int) {
	w.cur = w.cur<<1 | byte(b)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

func (w *bitWriter) flush() []byte {
	for w.nbit != 0 {
		w.writeBit(0)
	}
	return w.buf
}

// bitReader consumes bits MSB first; reads past the end return zeros,
// which is the standard arithmetic-decoder convention.
type bitReader struct {
	buf  []byte
	pos  int
	cur  byte
	nbit int
}

func (r *bitReader) readBit() int {
	if r.nbit == 0 {
		if r.pos < len(r.buf) {
			r.cur = r.buf[r.pos]
			r.pos++
		} else {
			r.cur = 0
		}
		r.nbit = 8
	}
	b := int(r.cur >> 7)
	r.cur <<= 1
	r.nbit--
	return b
}

// encoder carries arithmetic-coder state.
type encoder struct {
	low, high uint64
	pending   int
	w         bitWriter
}

func (e *encoder) emit(bit int) {
	e.w.writeBit(bit)
	for ; e.pending > 0; e.pending-- {
		e.w.writeBit(1 - bit)
	}
}

func (e *encoder) encode(m *freqModel, sym int) {
	total := m.total()
	span := e.high - e.low + 1
	e.high = e.low + span*m.cum[sym+1]/total - 1
	e.low = e.low + span*m.cum[sym]/total
	for {
		switch {
		case e.high < halfValue:
			e.emit(0)
		case e.low >= halfValue:
			e.emit(1)
			e.low -= halfValue
			e.high -= halfValue
		case e.low >= firstQtr && e.high < thirdQtr:
			e.pending++
			e.low -= firstQtr
			e.high -= firstQtr
		default:
			return
		}
		e.low <<= 1
		e.high = e.high<<1 | 1
	}
}

func (e *encoder) finish() []byte {
	e.pending++
	if e.low < firstQtr {
		e.emit(0)
	} else {
		e.emit(1)
	}
	return e.w.flush()
}

// decoder mirrors encoder.
type decoder struct {
	low, high, value uint64
	r                bitReader
}

func newDecoder(data []byte) *decoder {
	d := &decoder{high: topValue, r: bitReader{buf: data}}
	for i := 0; i < codeBits; i++ {
		d.value = d.value<<1 | uint64(d.r.readBit())
	}
	return d
}

func (d *decoder) decode(m *freqModel) int {
	total := m.total()
	span := d.high - d.low + 1
	target := ((d.value-d.low+1)*total - 1) / span
	// Binary search the cumulative table.
	lo, hi := 0, len(m.freq)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.cum[mid] <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	sym := lo
	d.high = d.low + span*m.cum[sym+1]/total - 1
	d.low = d.low + span*m.cum[sym]/total
	for {
		switch {
		case d.high < halfValue:
			// nothing
		case d.low >= halfValue:
			d.value -= halfValue
			d.low -= halfValue
			d.high -= halfValue
		case d.low >= firstQtr && d.high < thirdQtr:
			d.value -= firstQtr
			d.low -= firstQtr
			d.high -= firstQtr
		default:
			return sym
		}
		d.low <<= 1
		d.high = d.high<<1 | 1
		d.value = d.value<<1 | uint64(d.r.readBit())
	}
}

// EntropyEncode compresses b-bit code symbols with adaptive arithmetic
// coding. Quantized KV codes are far from uniform (central codes
// dominate for bell-shaped value distributions), so this typically beats
// raw packing — the effect CacheGen exploits.
func EntropyEncode(codes []uint8, bits int) ([]byte, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("compress: bits %d out of range", bits)
	}
	nsym := 1 << bits
	m := newFreqModel(nsym)
	e := &encoder{high: topValue}
	for _, c := range codes {
		if int(c) >= nsym {
			return nil, fmt.Errorf("compress: code %d exceeds %d-bit alphabet", c, bits)
		}
		e.encode(m, int(c))
		m.update(int(c))
	}
	return e.finish(), nil
}

// EntropyDecode reverses EntropyEncode for n symbols.
func EntropyDecode(data []byte, n, bits int) ([]uint8, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("compress: bits %d out of range", bits)
	}
	if n < 0 {
		return nil, errors.New("compress: negative symbol count")
	}
	nsym := 1 << bits
	m := newFreqModel(nsym)
	d := newDecoder(data)
	out := make([]uint8, n)
	for i := range out {
		sym := d.decode(m)
		out[i] = uint8(sym)
		m.update(sym)
	}
	return out, nil
}
