package compress

import (
	"fmt"

	"github.com/hackkv/hack/internal/quant"
)

// Codec turns quantization codes into a wire payload and back. The two
// baselines and HACK all ship 2-bit codes; they differ in how the
// bitstream is encoded.
type Codec interface {
	// Name identifies the codec.
	Name() string
	// Encode serializes b-bit codes into a wire payload.
	Encode(codes []uint8, bits int) ([]byte, error)
	// Decode recovers n codes from a payload.
	Decode(data []byte, n, bits int) ([]uint8, error)
}

// RawCodec bit-packs codes with no entropy coding — the KVQuant-style
// and HACK wire format.
type RawCodec struct{}

// Name implements Codec.
func (RawCodec) Name() string { return "raw" }

// Encode implements Codec.
func (RawCodec) Encode(codes []uint8, bits int) ([]byte, error) {
	return quant.Pack(codes, bits)
}

// Decode implements Codec.
func (RawCodec) Decode(data []byte, n, bits int) ([]uint8, error) {
	return quant.Unpack(data, n, bits)
}

// EntropyCodec arithmetic-codes the symbol stream — the CacheGen-style
// format that exploits the skew of quantized KV code distributions.
type EntropyCodec struct{}

// Name implements Codec.
func (EntropyCodec) Name() string { return "entropy" }

// Encode implements Codec.
func (EntropyCodec) Encode(codes []uint8, bits int) ([]byte, error) {
	return EntropyEncode(codes, bits)
}

// Decode implements Codec.
func (EntropyCodec) Decode(data []byte, n, bits int) ([]uint8, error) {
	return EntropyDecode(data, n, bits)
}

// MeasureRatio encodes the tensor's codes with the codec and returns
// payload bytes divided by raw packed bytes. Ratios below 1 mean the
// codec compresses beyond plain bit packing.
func MeasureRatio(c Codec, t *quant.Tensor) (float64, error) {
	raw := quant.PackedBytes(len(t.Codes), t.Bits)
	if raw == 0 {
		return 0, fmt.Errorf("compress: empty tensor")
	}
	enc, err := c.Encode(t.Codes, t.Bits)
	if err != nil {
		return 0, err
	}
	return float64(len(enc)) / float64(raw), nil
}
