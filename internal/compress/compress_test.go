package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func TestEntropyRoundTripSmall(t *testing.T) {
	codes := []uint8{0, 1, 2, 3, 3, 3, 2, 1, 0, 0, 1, 2}
	enc, err := EntropyEncode(codes, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := EntropyDecode(enc, len(codes), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, codes) {
		t.Fatalf("round trip: got %v, want %v", dec, codes)
	}
}

func TestEntropyRoundTripEmpty(t *testing.T) {
	enc, err := EntropyEncode(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := EntropyDecode(enc, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d symbols from empty stream", len(dec))
	}
}

func TestEntropyRoundTripProperty(t *testing.T) {
	f := func(raw []byte, w8 uint8) bool {
		w := int(w8%8) + 1
		codes := make([]uint8, len(raw))
		for i, b := range raw {
			codes[i] = b & uint8(1<<w-1)
		}
		enc, err := EntropyEncode(codes, w)
		if err != nil {
			return false
		}
		dec, err := EntropyDecode(enc, len(codes), w)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEntropyRoundTripLongSkewed(t *testing.T) {
	// Heavily skewed stream, like real quantized KV codes.
	rng := rand.New(rand.NewSource(1))
	codes := make([]uint8, 50000)
	for i := range codes {
		r := rng.Float64()
		switch {
		case r < 0.45:
			codes[i] = 1
		case r < 0.85:
			codes[i] = 2
		case r < 0.95:
			codes[i] = 0
		default:
			codes[i] = 3
		}
	}
	enc, err := EntropyEncode(codes, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := EntropyDecode(enc, len(codes), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, codes) {
		t.Fatal("long skewed stream corrupted")
	}
	// The skewed distribution has entropy ≈ 1.7 bits < 2, so the coder
	// must beat raw packing.
	raw := quant.PackedBytes(len(codes), 2)
	if len(enc) >= raw {
		t.Errorf("entropy %d bytes >= raw %d bytes on skewed data", len(enc), raw)
	}
}

func TestEntropyErrors(t *testing.T) {
	if _, err := EntropyEncode([]uint8{4}, 2); err == nil {
		t.Error("out-of-alphabet code accepted")
	}
	if _, err := EntropyEncode(nil, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := EntropyDecode(nil, -1, 2); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := EntropyDecode(nil, 0, 9); err == nil {
		t.Error("bits=9 accepted")
	}
}

func TestCodecsOnRealKV(t *testing.T) {
	// Quantize a Gaussian KV block and check both codecs round-trip and
	// that the entropy codec compresses it below raw packing (the
	// CacheGen effect: 2-bit codes of bell-shaped data are skewed).
	rng := rand.New(rand.NewSource(2))
	k := tensor.RandNormal(rng, 1024, 128, 1)
	qt := quant.MustQuantize(k, quant.AlongCols, quant.Config{
		Bits: 2, Partition: 64, Rounding: quant.StochasticRounding, RNG: rng,
	})
	for _, c := range []Codec{RawCodec{}, EntropyCodec{}} {
		enc, err := c.Encode(qt.Codes, qt.Bits)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dec, err := c.Decode(enc, len(qt.Codes), qt.Bits)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(dec, qt.Codes) {
			t.Fatalf("%s: round trip corrupted", c.Name())
		}
	}
	ratio, err := MeasureRatio(EntropyCodec{}, qt)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 1.0 {
		t.Errorf("entropy ratio %.3f on Gaussian KV, want < 1", ratio)
	}
	rawRatio, err := MeasureRatio(RawCodec{}, qt)
	if err != nil {
		t.Fatal(err)
	}
	if rawRatio != 1.0 {
		t.Errorf("raw ratio %.3f, want exactly 1", rawRatio)
	}
}

func TestMeasureRatioEmpty(t *testing.T) {
	if _, err := MeasureRatio(RawCodec{}, quant.Empty(quant.AlongCols, 4, 2, 4)); err == nil {
		t.Error("empty tensor accepted")
	}
}

func TestCodecNames(t *testing.T) {
	if (RawCodec{}).Name() != "raw" || (EntropyCodec{}).Name() != "entropy" {
		t.Error("codec names wrong")
	}
}

func BenchmarkEntropyEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	codes := make([]uint8, 64*1024)
	for i := range codes {
		codes[i] = uint8(rng.Intn(3) + rng.Intn(2)) // skewed
	}
	b.SetBytes(int64(len(codes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EntropyEncode(codes, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntropyDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	codes := make([]uint8, 64*1024)
	for i := range codes {
		codes[i] = uint8(rng.Intn(4))
	}
	enc, err := EntropyEncode(codes, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(codes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EntropyDecode(enc, len(codes), 2); err != nil {
			b.Fatal(err)
		}
	}
}
