# Build the hackserved daemon from source. The module is pure stdlib
# (no go.sum), so the build needs no network access beyond the base
# images.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/hackserved ./cmd/hackserved

FROM alpine:3.20
RUN adduser -D -u 10001 hack
USER hack
COPY --from=build /out/hackserved /usr/local/bin/hackserved
# HTTP API (OpenAI-compatible + NDJSON) and the KV wire.
EXPOSE 8080 9000
ENTRYPOINT ["hackserved"]
CMD ["-addr", "0.0.0.0:8080"]
