package hack_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hackkv/hack"
)

// listenEngine builds an engine configured for the live runtime with
// the given method, single-worker deterministic mode.
func listenEngine(t *testing.T, method string) *hack.Engine {
	t.Helper()
	eng, err := hack.New(
		hack.WithMethod(method),
		hack.WithServeConfig(hack.ServeConfig{
			PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 6,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestListenGeneratesDeterministically runs the facade end to end for
// every evaluated method: Listen, generate, and check the stream is
// reproducible across a fresh server.
func TestListenGeneratesDeterministically(t *testing.T) {
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6}
	for _, method := range []string{"Baseline", "CacheGen", "KVQuant", "HACK", "FP8"} {
		method := method
		t.Run(method, func(t *testing.T) {
			runOnce := func() []int {
				srv, err := listenEngine(t, method).Listen(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					_ = srv.Shutdown(ctx)
				}()
				toks, err := srv.Generate(context.Background(),
					hack.GenRequest{Prompt: prompt, MaxNewTokens: 6, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				return toks
			}
			a, b := runOnce(), runOnce()
			if len(a) != 6 {
				t.Fatalf("%s generated %d tokens, want 6", method, len(a))
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Errorf("%s not reproducible: %v vs %v", method, a, b)
			}
		})
	}
}

// TestListenStreaming exercises the streaming path and the metrics
// snapshot through the facade.
func TestListenStreaming(t *testing.T) {
	srv, err := listenEngine(t, "HACK").Listen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Submit(context.Background(),
		hack.GenRequest{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for tok := range st.Tokens() {
		if tok.Index != n {
			t.Fatalf("token index %d, want %d", tok.Index, n)
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("streamed %d tokens, want 5", n)
	}
	snap := srv.Metrics()
	if snap.Completed != 1 || snap.TokensStreamed != 5 {
		t.Errorf("snapshot: %+v", snap)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), hack.GenRequest{Prompt: []int{1}}); !errors.Is(err, hack.ErrDraining) {
		t.Errorf("post-shutdown submit: %v, want ErrDraining", err)
	}
}

// TestListenContextDrain checks that cancelling the Listen context
// force-drains the server in the background.
func TestListenContextDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := listenEngine(t, "HACK").Listen(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining after ctx cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWithServeConfigValidation rejects negative sizing at New time.
func TestWithServeConfigValidation(t *testing.T) {
	_, err := hack.New(hack.WithServeConfig(hack.ServeConfig{MaxBatch: -1}))
	if err == nil {
		t.Error("negative MaxBatch accepted")
	}
}
