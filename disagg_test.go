package hack_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hackkv/hack"
)

// disaggEngine builds an engine for one disaggregated role in
// deterministic single-worker mode.
func disaggEngine(t *testing.T, role hack.Role, opts ...hack.Option) *hack.Engine {
	t.Helper()
	eng, err := hack.New(append([]hack.Option{
		hack.WithMethod("HACK"),
		hack.WithRole(role),
		hack.WithServeConfig(hack.ServeConfig{
			PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 8,
		}),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestDisaggFacadeByteIdentical boots a full disaggregated deployment
// through the public facade — router, prefill node, two decode
// replicas — and requires the routed stream to match Engine.Listen's
// single-process output byte-for-byte.
func TestDisaggFacadeByteIdentical(t *testing.T) {
	ctx := context.Background()
	req := hack.RoutedRequest{Prompt: []int{2, 7, 1, 8, 2, 8}, MaxNewTokens: 6, Seed: 17}

	// Single-process reference.
	local, err := listenEngine(t, "HACK").Listen(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Shutdown(ctx)
	want, err := local.Generate(ctx, hack.GenRequest{
		Prompt: req.Prompt, MaxNewTokens: req.MaxNewTokens, Seed: req.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	prefill, err := disaggEngine(t, hack.RolePrefill).ListenDisagg(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer prefill.Close()
	var decodes []*hack.DisaggServer
	for i := 0; i < 2; i++ {
		d, err := disaggEngine(t, hack.RoleDecode).ListenDisagg(ctx)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		decodes = append(decodes, d)
	}
	router, err := disaggEngine(t, hack.RoleRouter,
		hack.WithPeers([]string{prefill.WireAddr()},
			[]string{decodes[0].WireAddr(), decodes[1].WireAddr()}),
		hack.WithDisaggConfig(hack.DisaggConfig{HealthInterval: time.Hour}),
	).ListenDisagg(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	st, err := router.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for tok := range st.Tokens() {
		got = append(got, tok.ID)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("routed %v, local %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged: routed %v, local %v", i, got, want)
		}
	}

	rep := router.Report()
	if rep.Completed != 1 || len(rep.Replicas) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	var sb strings.Builder
	if err := router.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hackserved_router_completed_total 1") {
		t.Fatalf("router prometheus output:\n%s", sb.String())
	}
}

// TestDisaggFacadeRoleErrors pins the role-surface contract: wrong-role
// calls fail loudly rather than silently no-op, and unknown roles are
// rejected at option time.
func TestDisaggFacadeRoleErrors(t *testing.T) {
	if _, err := hack.New(hack.WithRole("bogus")); err == nil {
		t.Fatal("bogus role accepted")
	}
	if _, err := hack.ParseRole("bogus"); err == nil {
		t.Fatal("ParseRole accepted bogus")
	}
	if r, err := hack.ParseRole(""); err != nil || r != hack.RoleLocal {
		t.Fatalf("ParseRole(\"\") = %v, %v", r, err)
	}

	// A local engine has no disaggregated role.
	if _, err := listenEngine(t, "HACK").ListenDisagg(context.Background()); err == nil {
		t.Fatal("local engine accepted ListenDisagg")
	}

	p, err := disaggEngine(t, hack.RolePrefill).ListenDisagg(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Submit(context.Background(), hack.RoutedRequest{Prompt: []int{1}}); err == nil {
		t.Fatal("prefill node accepted Submit")
	}
	if err := p.Drain(); err == nil {
		t.Fatal("prefill node accepted Drain")
	}
	if err := p.AddReplica("127.0.0.1:1"); err == nil {
		t.Fatal("prefill node accepted AddReplica")
	}

	// A router with no prefill peers is a configuration error.
	if _, err := disaggEngine(t, hack.RoleRouter).ListenDisagg(context.Background()); err == nil {
		t.Fatal("router with no prefill peers accepted")
	}

	// ErrNoReplicas surfaces through the facade sentinels.
	r, err := disaggEngine(t, hack.RoleRouter,
		hack.WithPeers([]string{p.WireAddr()}, nil),
		hack.WithDisaggConfig(hack.DisaggConfig{
			HealthInterval: time.Hour, RetryBackoff: time.Millisecond,
		}),
	).ListenDisagg(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Submit(context.Background(), hack.RoutedRequest{Prompt: []int{1, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for range st.Tokens() {
	}
	if err := st.Err(); !errors.Is(err, hack.ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}

	// A mismatched deployment is refused at the handshake, and the
	// refusal is a typed sentinel through the facade.
	mis, err := disaggEngine(t, hack.RoleRouter,
		hack.WithPeers([]string{p.WireAddr()}, nil),
		hack.WithServeConfig(hack.ServeConfig{ModelSeed: 99}),
		hack.WithDisaggConfig(hack.DisaggConfig{HealthInterval: time.Hour}),
	).ListenDisagg(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer mis.Close()
	if err := mis.AddReplica(p.WireAddr()); !errors.Is(err, hack.ErrHandshakeRefused) {
		t.Fatalf("AddReplica to mismatched peer: %v, want ErrHandshakeRefused", err)
	}
}
