module github.com/hackkv/hack

go 1.22
