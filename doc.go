// Package hack is a from-scratch Go reproduction of "HACK: Homomorphic
// Acceleration via Compression of the Key-Value Cache for Disaggregated
// LLM Inference" (SIGCOMM 2025).
//
// The implementation lives under internal/: the homomorphic-quantization
// core (internal/hack), its substrates (quantizer, KV caches, attention
// backends, a numeric transformer, wire protocol, cluster cost model,
// discrete-event simulator) and the experiment runners that regenerate
// every table and figure of the paper's evaluation. See README.md for a
// tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results. Executables: cmd/hackbench (all
// experiments), cmd/hacksim (one simulation), cmd/hackquant (quantizer
// inspector); runnable examples live under examples/.
package hack
