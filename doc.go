// Package hack is the public API of a from-scratch Go reproduction of
// "HACK: Homomorphic Acceleration via Compression of the Key-Value
// Cache for Disaggregated LLM Inference" (SIGCOMM 2025).
//
// # Engine
//
// Engine simulates a disaggregated prefill/decode serving cluster.
// Build one with New and functional options, then Run a Workload:
//
//	eng, err := hack.New(
//		hack.WithModel("L"),            // Llama-3.1 70B
//		hack.WithGPU("A10G"),           // prefill instance pool
//		hack.WithMethod("HACK"),        // serving method
//		hack.WithReplicas(5, 4),        // prefill x decode replicas
//		hack.WithPipeline(true),        // overlap transfer with prefill
//	)
//	res, err := eng.Run(ctx, hack.Workload{
//		Dataset: "Cocktail", RPS: 0.5, Requests: 200, Seed: 42,
//	})
//
// Run honors ctx cancellation and, with WithStream, invokes a callback
// as each simulated request completes. The Result carries every
// request's JCT decomposition (queue, prefill, quantization,
// communication, dequantization-or-approximation, decode) and serving
// latencies (TTFT, TBT), plus the AvgJCT / P50JCT / P99JCT / AvgTimes
// / AvgRatios / Summarize aggregations the paper's figures report.
// Further options: WithDecodeGPU, WithMaxBatch, WithMemCapFrac,
// WithScheduler, WithCostParams, WithModelSpec, WithMethodProfile.
//
// # SLO-aware serving
//
// WithSLO(ttft, tbt) sets latency targets in seconds; Engine.Serve runs
// a workload and returns a ServeReport with throughput, nearest-rank
// p50/p90/p99 latency summaries and SLO attainment. Beyond the paper's
// shortest-queue policy the schedulers include LoadAware (FlowKV-style
// routing on prefill drain + pending KV bytes) and SLOAware, which also
// picks each request's compression method from the WithAdmitMethods
// class ladder so interactive traffic keeps fidelity while long prompts
// are compressed to protect the targets. WithPrefillChunk enables
// Sarathi-style chunked prefill and WithPreemption decode-side eviction
// with KV re-transfer; see examples/slo and the scenario-test harness
// under internal/sim.
//
// # Live serving
//
// Engine.Listen starts the execution counterpart of the simulator: a
// concurrent serving runtime (internal/serve) that actually runs
// requests through the numeric transformer and the engine method's
// kernels — the homomorphic HACK path for HACK-family methods — under
// continuous batching. Arrivals are routed across prefill workers by
// the engine's scheduler policy, the decode batcher re-forms its batch
// every step, full admission queues load-shed with ErrQueueFull, and
// Shutdown drains gracefully (ErrDraining for late submissions):
//
//	srv, err := eng.Listen(ctx)
//	st, err := srv.Submit(ctx, hack.GenRequest{Prompt: []int{1, 2, 3}, MaxNewTokens: 8})
//	for tok := range st.Tokens() { ... }  // streamed, ctx-cancellable
//	snap := srv.Metrics()                 // TTFT/TBT percentiles, queue depth, batch occupancy
//	err = srv.Shutdown(ctx)               // graceful drain
//
// WithServeConfig sizes the runtime (prefill workers, decode batch,
// queue bounds, token caps, the numeric model — Toy by default, since
// catalog-scale specs are priced, not executed). Streams are
// deterministic per (prompt, seed) regardless of batch composition;
// with one prefill worker and serial decode stepping the runtime is
// byte-identical across reruns. cmd/hackserved wraps a Server in an
// HTTP daemon (streamed POST /v1/generate, GET /metrics, GET /healthz,
// SIGTERM graceful drain); see examples/served for the library form.
//
// # HTTP serving surface
//
// Server.Handler and DisaggServer.Handler mount the same HTTP layer
// (internal/api) over either role, so the local daemon and the
// disaggregated router expose one surface: the streamed NDJSON
// POST /v1/generate, an OpenAI-compatible POST /v1/completions and
// POST /v1/chat/completions (both supporting "stream":true server-sent
// events with a data: [DONE] terminator and usage accounting in the
// final chunk), GET /v1/models fed by the model and method registries,
// and the shared /metrics (JSON, or Prometheus text under content
// negotiation) and /healthz routes. Text is mapped into the served
// model's token-id space by a deterministic tokenizer shim whose
// round trip is exact, so an OpenAI request's emitted token ids are
// byte-identical to the equivalent /v1/generate call per (prompt,
// seed) on every role. Errors share one OpenAI-style envelope
// ({"error":{"type","message","code"}}): queue-full load sheds are
// 429, draining and fleet unavailability 503, validation 400. A client
// disconnecting mid-stream cancels the request context through to the
// engine's cancellation path. The Dockerfile and docker-compose.yml at
// the repo root boot the full router+prefill+decode fleet with the
// router's surface on :8080.
//
// WithPrefixCache (or ServeConfig.PrefixCacheBytes; -prefix-cache-bytes
// on the daemon) enables the shared-prefix KV tier: quantized Π-aligned
// KV pages from completed prefills are indexed by prompt prefix, and a
// request sharing a cached prefix restores them and skips prefill over
// the matched span — streaming tokens byte-identical to its own cold
// run. Eviction is ref-counted LRU under the byte budget; the hit /
// miss / tokens-reused / bytes-saved counters appear as
// Snapshot.PrefixCache. Requires a homomorphic method with
// requantization elimination, and composes with the local role only
// (prefix pages do not ship over the disaggregated KV wire).
//
// WithSpeculation(k, class) (or ServeConfig.SpecK/SpecDraft; -spec-k
// and -spec-draft on the daemon) enables speculative decoding: a cheap
// draft pass from a coarser quantization class (DraftClasses lists the
// named classes) proposes up to k−1 tokens per step, and the target
// model verifies the window in one batched kernel call — a k-row Q·Kᵀ
// against the cache instead of k single-row decodes, served by a
// dedicated register-blocked verify path (~2× the single-row calls it
// replaces, the spec_decode baseline in BENCH_kernels.json). Rejected
// suffixes roll back the KV tail and rewind the quantizer streams in
// O(1), so emitted streams stay byte-identical to the non-speculative
// path per (prompt, seed). Window counts, draft acceptance and
// per-request acceptance percentiles appear as Snapshot.Speculation;
// sim.Config's SpecK/SpecAcceptance/SpecDraftCost model the same
// algebra for capacity planning. Local role only.
//
// # Disaggregated serving
//
// WithRole splits that runtime across real processes over a TCP KV
// wire, reproducing the paper's disaggregated deployment shape:
// RolePrefill nodes run kernel prefills and ship each head's quantized
// KV pages as CRC-checked wire frames (plus the quantizer's RNG draw
// counts, so the receiver replays the exact stream state); RoleDecode
// replicas reconstruct the cache into the continuous-batching loop;
// a RoleRouter fronts the deployment with load-aware placement
// (pending KV bytes + in-flight, the simulator's LoadAware signals),
// /healthz health polling, drain awareness, and retry/failover that
// replays a buffered KV transfer on a fresh replica without
// duplicating or dropping tokens:
//
//	router, err := eng.ListenDisagg(ctx) // eng built with WithRole(hack.RoleRouter),
//	                                     // WithPeers(prefills, decodes)
//	st, err := router.Submit(ctx, hack.RoutedRequest{Prompt: []int{1, 2, 3}, MaxNewTokens: 8})
//	for tok := range st.Tokens() { ... } // byte-identical to the local runtime
//	rep := router.Report()               // per-replica occupancy, link KV bytes, retries
//
// The handshake carries method, model spec and seed, so mismatched
// nodes refuse to pair (ErrHandshakeRefused) rather than silently
// diverge. WithDisaggConfig sizes addresses, concurrency and the
// fault-tolerance posture; cmd/hackserved exposes the same roles as a
// daemon (-role prefill|decode|router).
//
// # Fault tolerance and chaos testing
//
// The wire treats the network as hostile. A corrupt frame surfaces as
// a typed checksum error and a missed per-frame deadline
// (DisaggConfig.FrameTimeout) as a typed wire timeout; both are link
// faults, so the router retries them — under jittered exponential
// backoff (RetryBackoff, RetryJitter) bounded by an attempt cap
// (RetryMax; negative means budget-only) and a wall-clock budget
// (RetryBudget) — replaying the buffered KV transfer on another
// replica with token streams deduplicated by index. Repeated link
// failures trip a per-replica circuit breaker
// (BreakerThreshold consecutive failures open it; after BreakerCooldown
// a half-open probe decides) that steers placement away until the
// health monitor's out-of-band probe re-closes it; breaker state rides
// DisaggReport.Replicas and the router's Prometheus metrics. The
// serve-side remote prefix cache carries the same breaker (internal
// serve.Config's PrefixBreakerThreshold and PrefixBreakerCooldown),
// degrading to local prefill while its backend link is sick.
//
// DisaggConfig.ChaosScript (the -chaos-script router flag) replays a
// named fault script — ChaosScripts() lists kill-decode,
// degrade-kv-link, partition-heal, corrupt-frame — against the
// router's own links through a deterministic, seed-driven injector
// (ChaosSeed): latency, bandwidth caps, bit flips, resets, half-open
// stalls, partitions, then heal. Scripted kills are modeled as
// partitions (a router cannot stop a remote process). Streams must
// still complete byte-identically; the injector's chaos_* counters
// join the router's /metrics.
//
// # Sweeps
//
// RunSweep executes a declarative grid of Engine configurations — the
// paper's method × dataset × GPU × load evaluation matrices — on a
// bounded worker pool with context cancellation, per-cell panic
// isolation and streamed progress:
//
//	res, err := hack.RunSweep(ctx, hack.SweepSpec{
//		Methods:  []string{"Baseline", "HACK"},
//		Datasets: []string{"IMDb", "Cocktail"},
//		RPS:      []float64{0.5, 1.0},
//		Requests: 200, Seed: 42,
//	}, hack.SweepWorkers(8))
//	res.WriteMarkdown(os.Stdout, hack.MetricPeakMem) // the Table 5 pivot
//
// Determinism is a contract: per-cell trace seeds derive from the spec,
// cells differing only in method replay the same trace, and results are
// ordered by cell index regardless of completion order, so identical
// specs produce byte-identical WriteJSON reports at any worker count.
// CellResult carries each cell's JCT decomposition, peak decode memory
// and speedup over the baseline method; WriteCSV exports flat records
// and Tables/WriteMarkdown pivot method rows against dataset columns.
//
// # Registries
//
// Every serving method, dataset, GPU instance, model and experiment is
// a named registry entry; Methods, Datasets, GPUs, Models and
// Experiments enumerate the names, and MethodNamed, DatasetNamed,
// GPUNamed, ModelNamed and ExperimentNamed resolve them
// (case-insensitive; unknown names return an error listing the valid
// spellings). RunExperiment regenerates any paper table or figure by
// ID. Adding an entry is one Register call in the defining internal
// package — no switch statements.
//
// # Homomorphic kernel
//
// The paper's core primitive is exported directly: Quantize encodes a
// Matrix with the asymmetric b-bit stochastic quantizer (§5.2), and
// MatMul / MatMulTransB compute products on the quantized codes via the
// Eq. (4) correction without ever dequantizing, returning the result
// and an Ops work tally:
//
//	kq, _ := hack.Quantize(k, hack.AlongCols, hack.QuantConfig{
//		Bits: 2, Partition: 64, Rounding: hack.StochasticRounding, RNG: rng,
//	})
//	scores, ops := hack.MatMulTransB(qq, kq, hack.DefaultMatMulOptions())
//
// The kernels are packed, tiled, SIMD-accelerated (AVX2 where the CPU
// has it) and tile-parallel, yet bit-identical to the retained scalar
// references MatMulScalar / MatMulTransBScalar at every setting of
// MatMulOptions.Parallelism (0 = one worker per CPU, 1 = serial).
// MatMulInto / MatMulTransBInto and QuantizeInto reuse caller-supplied
// storage so per-token serving loops run allocation-free; see the
// README's Performance section and cmd/kernelbench (BENCH_kernels.json)
// for the measured speedups. Engines thread the parallelism knob to
// derived numeric configurations via WithKernelParallelism and
// Engine.HACKAttentionConfig.
//
// # Numeric toolkit
//
// The accuracy-experiment substrate is exported for library use: the
// per-head attention backends (ExactAttention, FP16Attention,
// NewDequantAttention, NewHACKAttention), the seeded numeric
// Transformer they plug into, the quantized KVCache with SE and RQE,
// the KVFrame wire format, and the Rouge1 / EditSimilarity metrics.
//
// Executables: cmd/hackbench (all experiments), cmd/hacksim (one
// simulation), cmd/hacksweep (concurrent multi-config sweeps),
// cmd/hackquant (quantizer inspector), cmd/kernelbench (kernel hot-path
// measurements → BENCH_kernels.json); runnable examples live under
// examples/. See README.md for a quickstart.
package hack
