package hack

import (
	"context"
	"fmt"
	"io"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
	"github.com/hackkv/hack/internal/workload"
)

// Serving-simulation types re-exported from the internal packages. The
// aliases carry every exported method and field, so a Result supports
// AvgJCT / P50JCT / P99JCT / AvgTimes / AvgRatios exactly as documented
// on the internal types.
type (
	// Method is a serving-method profile: how KV is represented on the
	// wire and in cache, and which per-iteration overhead
	// (dequantization vs the Eq. (4) approximation) the method pays.
	Method = cluster.Method
	// Instance is one cloud GPU instance type (Table 2).
	Instance = cluster.Instance
	// ModelSpec is a transformer architecture from the paper's catalog.
	ModelSpec = model.Spec
	// CostParams are the calibration knobs of the analytic performance
	// model.
	CostParams = cluster.CostParams
	// Dataset is one evaluation workload (a Table 4 row).
	Dataset = workload.Dataset
	// Request is one inference job in a trace.
	Request = workload.Request
	// RequestStats is one simulated request's JCT decomposition.
	RequestStats = sim.RequestStats
	// Result aggregates one simulation run.
	Result = sim.Result
	// Scheduler selects the prefill request-placement policy.
	Scheduler = sim.Scheduler
	// SLO is a pair of serving targets: time to first token and mean
	// time between subsequent tokens, in seconds. Zero fields are
	// untracked.
	SLO = sim.SLO
	// Summary aggregates one run's serving metrics: throughput, JCT /
	// TTFT / TBT / queueing percentile summaries, SLO attainment, swap
	// and preemption counters, peak decode memory.
	Summary = sim.Summary
	// ProbeEvent is one observable simulator transition, delivered to
	// the WithProbe callback in simulation order.
	ProbeEvent = sim.ProbeEvent
)

// Prefill scheduling policies.
const (
	// ShortestQueue assigns each arrival to the prefill replica with the
	// fewest queued tokens — the paper's policy (§7.1).
	ShortestQueue = sim.ShortestQueue
	// RoundRobin cycles through replicas regardless of load.
	RoundRobin = sim.RoundRobin
	// FewestRequests assigns to the replica with the fewest queued
	// requests, ignoring their lengths.
	FewestRequests = sim.FewestRequests
	// LoadAware scores replicas by estimated prefill drain time plus
	// pending-KV transfer time and routes to the lowest score
	// (FlowKV-style load-aware routing).
	LoadAware = sim.LoadAware
	// SLOAware places like LoadAware and picks each request's
	// compression method so its estimated TTFT/TBT meet the engine's
	// SLO targets (KVServe-style service-aware admission; see
	// WithSLO and WithAdmitMethods).
	SLOAware = sim.SLOAware
)

// DefaultCostParams returns the calibrated cost-model defaults.
func DefaultCostParams() CostParams { return cluster.DefaultCostParams() }

// Workload describes the request trace an Engine run serves. Either set
// Trace to replay explicit requests, or leave it nil to generate a
// deterministic Poisson trace: Dataset names a registry entry whose
// length distributions are sampled (capped to the engine model's context
// window), RPS is the arrival rate, Requests the trace length, and Seed
// fixes all randomness.
type Workload struct {
	Dataset  string
	RPS      float64
	Requests int
	Seed     int64
	// Trace, when non-nil, is replayed as-is and the generation fields
	// above are ignored.
	Trace []Request
}

// Engine is the configured serving system: a model, a prefill and a
// decode instance pool, a serving method, and the simulator parameters.
// Build one with New and functional options; the zero value is not
// usable.
type Engine struct {
	spec    ModelSpec
	prefill Instance
	decode  Instance
	method  Method
	params  CostParams

	prefillN, decodeN int
	maxBatch          int
	memCapFrac        float64
	pipeline          bool
	scheduler         Scheduler
	stream            func(RequestStats)
	kernelPar         int
	slo               SLO
	prefillChunk      int
	preemption        bool
	admitMethods      []Method
	probe             func(ProbeEvent)
	serveCfg          ServeConfig
	prefixBytes       int64
	specK             int
	specDraft         string
	role              Role
	peerPrefills      []string
	peerDecodes       []string
	disaggCfg         DisaggConfig

	cm *cluster.CostModel
}

// Option configures an Engine under construction. Options that resolve
// names report unknown-name errors (listing the valid spellings) from
// New.
type Option func(*Engine) error

// New builds an Engine from the defaults — Llama-3.1 70B on an A10G
// prefill pool and A100 decode pool serving HACK with 5 prefill and 4
// decode replicas — overridden by the given options, and validates the
// resulting deployment against the paper's Table 3 parallelism catalog.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		spec:       model.Llama70B(),
		prefill:    cluster.A10G(),
		decode:     cluster.A100(),
		method:     cluster.DefaultHACK(),
		params:     cluster.DefaultCostParams(),
		prefillN:   5,
		decodeN:    4,
		maxBatch:   256,
		memCapFrac: 0.95,
		scheduler:  ShortestQueue,
		role:       RoleLocal,
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, fmt.Errorf("hack: %w", err)
		}
	}
	cm, err := cluster.NewCostModel(e.spec, e.prefill, e.decode, e.params)
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	e.cm = cm
	return e, nil
}

// WithModel selects the served model by catalog tag or full name
// (M, P, Y, L, F — see Models).
func WithModel(name string) Option {
	return func(e *Engine) error {
		spec, err := model.Registry.Lookup(name)
		if err != nil {
			return err
		}
		e.spec = spec
		return nil
	}
}

// WithModelSpec serves a custom architecture. Models outside the paper's
// catalog need a Table 3 parallelism entry for the selected GPUs; New
// reports an error otherwise.
func WithModelSpec(spec ModelSpec) Option {
	return func(e *Engine) error {
		e.spec = spec
		return nil
	}
}

// WithGPU selects the prefill instance pool by accelerator tag (see
// GPUs).
func WithGPU(name string) Option {
	return func(e *Engine) error {
		in, err := cluster.GPURegistry.Lookup(name)
		if err != nil {
			return err
		}
		e.prefill = in
		return nil
	}
}

// WithDecodeGPU selects the decode instance pool by accelerator tag; the
// default is the paper's A100 decode side.
func WithDecodeGPU(name string) Option {
	return func(e *Engine) error {
		in, err := cluster.GPURegistry.Lookup(name)
		if err != nil {
			return err
		}
		e.decode = in
		return nil
	}
}

// WithMethod selects the serving method by registry name (see Methods).
func WithMethod(name string) Option {
	return func(e *Engine) error {
		m, err := cluster.MethodRegistry.Lookup(name)
		if err != nil {
			return err
		}
		e.method = m
		return nil
	}
}

// WithMethodProfile serves a custom method profile, e.g. a HACK variant
// with a non-catalog partition size.
func WithMethodProfile(m Method) Option {
	return func(e *Engine) error {
		e.method = m
		return nil
	}
}

// WithReplicas sets the prefill and decode replica counts.
func WithReplicas(prefill, decode int) Option {
	return func(e *Engine) error {
		if prefill <= 0 || decode <= 0 {
			return fmt.Errorf("replicas %d/%d must be positive", prefill, decode)
		}
		e.prefillN, e.decodeN = prefill, decode
		return nil
	}
}

// WithPipeline toggles overlapping KV transfer with prefill computation
// (§2.1).
func WithPipeline(on bool) Option {
	return func(e *Engine) error {
		e.pipeline = on
		return nil
	}
}

// WithMaxBatch caps a decode replica's concurrent batch.
func WithMaxBatch(n int) Option {
	return func(e *Engine) error {
		if n <= 0 {
			return fmt.Errorf("max batch %d must be positive", n)
		}
		e.maxBatch = n
		return nil
	}
}

// WithMemCapFrac sets the usable fraction of decode replica memory.
func WithMemCapFrac(frac float64) Option {
	return func(e *Engine) error {
		if frac <= 0 || frac > 1 {
			return fmt.Errorf("mem cap fraction %v outside (0, 1]", frac)
		}
		e.memCapFrac = frac
		return nil
	}
}

// WithScheduler selects the prefill request-placement policy.
func WithScheduler(s Scheduler) Option {
	return func(e *Engine) error {
		e.scheduler = s
		return nil
	}
}

// WithSLO sets the serving targets in seconds: ttft bounds the time to
// first token, tbt the mean time between subsequent tokens. Zero
// disables a target. The SLOAware scheduler admits against these, and
// Serve reports attainment against them.
func WithSLO(ttft, tbt float64) Option {
	return func(e *Engine) error {
		if ttft < 0 || tbt < 0 {
			return fmt.Errorf("SLO targets %v/%v must be >= 0", ttft, tbt)
		}
		e.slo = SLO{TTFT: ttft, TBT: tbt}
		return nil
	}
}

// WithPrefillChunk splits prompts into prefill passes of at most n
// tokens, with the replica round-robining across its queue between
// passes so short prompts are not head-of-line blocked behind long
// ones. 0 (the default) prefills whole prompts.
func WithPrefillChunk(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("prefill chunk %d must be >= 0", n)
		}
		e.prefillChunk = n
		return nil
	}
}

// WithPreemption lets a memory-starved request evict the admitted
// request with the most remaining decode work (at most once per
// victim); the victim's KV is swapped out and re-transferred before it
// resumes.
func WithPreemption(on bool) Option {
	return func(e *Engine) error {
		e.preemption = on
		return nil
	}
}

// WithProbe registers an observer for simulator transitions (arrivals,
// prefill passes, transfers, decode iterations, preemptions,
// completions), invoked synchronously in simulation order during Run.
// It must not mutate engine or simulator state; it never affects
// results.
func WithProbe(fn func(ProbeEvent)) Option {
	return func(e *Engine) error {
		e.probe = fn
		return nil
	}
}

// WithAdmitMethods names the fidelity-ordered compression classes the
// SLOAware scheduler picks from, highest fidelity first (default:
// Baseline, then the engine's method). Unknown names error from New
// with the valid spellings.
func WithAdmitMethods(names ...string) Option {
	return func(e *Engine) error {
		ms := make([]Method, 0, len(names))
		for _, name := range names {
			m, err := cluster.MethodRegistry.Lookup(name)
			if err != nil {
				return err
			}
			ms = append(ms, m)
		}
		e.admitMethods = ms
		return nil
	}
}

// WithCostParams overrides the calibrated cost-model parameters.
func WithCostParams(p CostParams) Option {
	return func(e *Engine) error {
		e.params = p
		return nil
	}
}

// WithStream registers a per-request streaming callback: Run invokes it
// with each request's stats the moment the request completes, in
// completion order, before returning the aggregate Result.
func WithStream(fn func(RequestStats)) Option {
	return func(e *Engine) error {
		e.stream = fn
		return nil
	}
}

// WithKernelParallelism bounds the worker goroutines the homomorphic
// numeric kernels may use per multiplication for toolkit components
// derived from this engine (see Engine.HACKAttentionConfig and
// MatMulOptions.Parallelism): 0 sizes like the sweep pool (one worker
// per CPU), 1 forces the serial path. Numeric outputs are bit-identical
// at every setting; only throughput changes.
func WithKernelParallelism(n int) Option {
	return func(e *Engine) error {
		if n < 0 {
			return fmt.Errorf("kernel parallelism %d must be >= 0", n)
		}
		e.kernelPar = n
		return nil
	}
}

// KernelParallelism returns the engine's numeric-kernel parallelism
// bound (0 = auto).
func (e *Engine) KernelParallelism() int { return e.kernelPar }

// HACKAttentionConfig derives the numeric attention configuration
// matching the engine's serving method — partition size Π and the SE /
// RQE toggles from the method profile, the paper's INT8 Q/P + INT2 KV
// widths, stochastic rounding from the given seed — with the engine's
// kernel-parallelism knob threaded through. It reports an error when
// the engine serves a non-homomorphic method, which has no HACK numeric
// counterpart.
func (e *Engine) HACKAttentionConfig(seed int64) (HACKAttentionConfig, error) {
	if !e.method.Homomorphic {
		return HACKAttentionConfig{}, fmt.Errorf("hack: method %q is not homomorphic", e.method.Name)
	}
	cfg := attention.DefaultHACKConfig(seed)
	if e.method.Pi > 0 {
		cfg.Pi = e.method.Pi
	}
	cfg.SummationElimination = e.method.SE
	cfg.RequantizationElimination = e.method.RQE
	cfg.Parallelism = e.kernelPar
	return cfg, nil
}

// Model returns the engine's model architecture.
func (e *Engine) Model() ModelSpec { return e.spec }

// Method returns the engine's serving-method profile.
func (e *Engine) Method() Method { return e.method }

// String summarizes the deployment.
func (e *Engine) String() string {
	return fmt.Sprintf("%s | %s | %d prefill x %d decode replicas",
		e.cm, e.method.Name, e.prefillN, e.decodeN)
}

// Trace materializes the workload's request trace: the explicit Trace if
// set, otherwise a deterministic Poisson trace drawn from the named
// dataset with its input lengths capped to the engine model's context
// window.
func (e *Engine) Trace(w Workload) ([]Request, error) {
	if w.Trace != nil {
		return w.Trace, nil
	}
	ds, err := workload.Registry.Lookup(w.Dataset)
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	reqs, err := workload.Trace(ds.CappedTo(e.spec.MaxContext), w.RPS, w.Requests, w.Seed)
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	return reqs, nil
}

// Run simulates serving the workload on the configured deployment. It
// honors ctx cancellation between simulator events and streams each
// completed request's stats to the WithStream callback. The Result is
// identical to driving the internal simulator directly with the same
// configuration and trace.
func (e *Engine) Run(ctx context.Context, w Workload) (*Result, error) {
	reqs, err := e.Trace(w)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, sim.Config{
		CM:              e.cm,
		Method:          e.method,
		PrefillReplicas: e.prefillN,
		DecodeReplicas:  e.decodeN,
		MaxBatch:        e.maxBatch,
		MemCapFrac:      e.memCapFrac,
		Pipeline:        e.pipeline,
		Scheduler:       e.scheduler,
		PrefillChunk:    e.prefillChunk,
		Preemption:      e.preemption,
		SLOTTFT:         e.slo.TTFT,
		SLOTBT:          e.slo.TBT,
		MethodClasses:   e.admitMethods,
		Probe:           e.probe,
	}, reqs, e.stream)
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	return res, nil
}

// SLO returns the engine's serving targets (zero fields untracked).
func (e *Engine) SLO() SLO { return e.slo }

// ServeReport is Serve's product: the deployment, the SLO it was judged
// against, and the run's serving summary (throughput, latency
// percentiles, attainment).
type ServeReport struct {
	Deployment string  `json:"deployment"`
	Scheduler  string  `json:"scheduler"`
	Dataset    string  `json:"dataset,omitempty"`
	SLO        SLO     `json:"slo"`
	Summary    Summary `json:"summary"`
}

// Serve runs the workload and summarizes it against the engine's SLO
// (set with WithSLO): the ServeReport carries TTFT/TBT/JCT/queueing
// percentiles, throughput, and the attainment fractions. Use Run when
// the per-request decompositions are needed instead.
func (e *Engine) Serve(ctx context.Context, w Workload) (*ServeReport, error) {
	res, err := e.Run(ctx, w)
	if err != nil {
		return nil, err
	}
	return &ServeReport{
		Deployment: e.String(),
		Scheduler:  e.scheduler.String(),
		Dataset:    w.Dataset,
		SLO:        e.slo,
		Summary:    res.Summarize(e.slo),
	}, nil
}

// GenerateTrace draws a deterministic Poisson trace from a named dataset
// without capping to any model's context window. Engines cap at Run time
// instead; use Engine.Trace for a trace sized to a deployment.
func GenerateTrace(dataset string, rps float64, n int, seed int64) ([]Request, error) {
	ds, err := workload.Registry.Lookup(dataset)
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	reqs, err := workload.Trace(ds, rps, n, seed)
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	return reqs, nil
}

// SaveTrace writes a trace as JSON for later replay with LoadTrace.
func SaveTrace(w io.Writer, dataset string, rps float64, seed int64, reqs []Request) error {
	return workload.SaveTrace(w, dataset, rps, seed, reqs)
}

// LoadTrace reads a trace written by SaveTrace.
func LoadTrace(r io.Reader) ([]Request, error) { return workload.LoadTrace(r) }

// MeanInputLen returns the average prompt length of a trace.
func MeanInputLen(reqs []Request) float64 { return workload.MeanInputLen(reqs) }
