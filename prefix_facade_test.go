package hack_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/hackkv/hack"
)

// prefixEngine builds a prefix-cache-enabled engine over a HACK variant
// with a small partition size so short prompts span several cache pages.
func prefixEngine(t *testing.T) *hack.Engine {
	t.Helper()
	m, err := hack.MethodNamed("HACK")
	if err != nil {
		t.Fatal(err)
	}
	m.Pi = 8
	eng, err := hack.New(
		hack.WithMethodProfile(m),
		hack.WithPrefixCache(1<<20),
		hack.WithServeConfig(hack.ServeConfig{
			PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 6,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestListenPrefixCacheWarmColdIdentity runs the shared-prefix tier end
// to end through the facade: the second generation of the same prompt
// hits the cache, skips prefill over the matched span, and streams the
// same tokens as the cold run.
func TestListenPrefixCacheWarmColdIdentity(t *testing.T) {
	srv, err := prefixEngine(t).Listen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	prompt := make([]int, 21)
	for i := range prompt {
		prompt[i] = (7*i + 3) % srv.Model().Vocab
	}
	cold, err := srv.Generate(context.Background(), hack.GenRequest{Prompt: prompt, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := srv.Generate(context.Background(), hack.GenRequest{Prompt: prompt, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(cold) != fmt.Sprint(warm) {
		t.Fatalf("warm stream %v diverged from cold %v", warm, cold)
	}
	pc := srv.Metrics().PrefixCache
	if pc == nil {
		t.Fatal("prefix tier enabled but snapshot carries no stats")
	}
	if pc.Hits != 1 || pc.Misses != 1 || pc.TokensReused != 16 {
		t.Fatalf("prefix stats %+v, want 1 hit reusing 16 tokens", pc)
	}
}

// TestListenPrefixCacheRequiresHomomorphic pins the facade-level guard:
// only homomorphic methods can restore quantized pages.
func TestListenPrefixCacheRequiresHomomorphic(t *testing.T) {
	eng, err := hack.New(
		hack.WithMethod("Baseline"),
		hack.WithPrefixCache(1<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Listen(context.Background()); err == nil {
		t.Fatal("baseline method accepted for prefix caching")
	}
}

// TestListenDisaggRejectsPrefixCache pins the incompatibility between
// the shared-prefix tier and the disaggregated KV wire.
func TestListenDisaggRejectsPrefixCache(t *testing.T) {
	eng, err := hack.New(
		hack.WithRole(hack.RolePrefill),
		hack.WithPrefixCache(1<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.ListenDisagg(context.Background())
	if err == nil || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("disaggregated role accepted a prefix cache: %v", err)
	}
}

// TestWithPrefixCacheValidation rejects non-positive budgets at option
// time.
func TestWithPrefixCacheValidation(t *testing.T) {
	if _, err := hack.New(hack.WithPrefixCache(0)); err == nil {
		t.Fatal("zero prefix cache budget accepted")
	}
	if _, err := hack.New(hack.WithPrefixCache(-5)); err == nil {
		t.Fatal("negative prefix cache budget accepted")
	}
}
