package hack

import (
	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/metrics"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/tensor"
)

// The numeric toolkit: per-head attention backends, the seeded numeric
// transformer they plug into, the quantized KV cache, and the wire
// protocol — the components behind the paper's accuracy experiments,
// usable directly as a library.

// Attention backends.
type (
	// AttentionBackend constructs per-head attention state for one of
	// the compared serving methods.
	AttentionBackend = attention.Backend
	// AttentionHead is per-sequence, per-head state: one Prefill, then
	// zero or more Decodes.
	AttentionHead = attention.Head
	// AttentionStats tallies the op and byte counts one attention call
	// performed.
	AttentionStats = attention.Stats
	// ExactAttention computes float32 attention with an unrounded cache
	// — the accuracy reference.
	ExactAttention = attention.ExactBackend
	// FP16Attention is the disaggregation baseline: FP16 KV storage and
	// transfer.
	FP16Attention = attention.FP16Backend
	// DequantAttention is the CacheGen/KVQuant family: 2-bit KV,
	// dequantized in full before every use.
	DequantAttention = attention.DequantBackend
	// DequantAttentionConfig parameterizes a DequantAttention backend.
	DequantAttentionConfig = attention.DequantConfig
	// HACKAttention runs Q·Kᵀ and P·V homomorphically on quantized data
	// (§5), with SE and RQE individually toggleable.
	HACKAttention = attention.HACKBackend
	// HACKAttentionConfig parameterizes a HACKAttention backend.
	HACKAttentionConfig = attention.HACKConfig
)

// NewDequantAttention builds a dequantize-before-compute backend.
func NewDequantAttention(cfg DequantAttentionConfig) (*DequantAttention, error) {
	return attention.NewDequant(cfg)
}

// NewHACKAttention builds a homomorphic attention backend.
func NewHACKAttention(cfg HACKAttentionConfig) (*HACKAttention, error) {
	return attention.NewHACK(cfg)
}

// DefaultHACKAttentionConfig returns the paper's shipping configuration
// (Π=64, INT2 KV, INT8 Q/P, SE+RQE) with the given stochastic-rounding
// seed.
func DefaultHACKAttentionConfig(seed int64) HACKAttentionConfig {
	return attention.DefaultHACKConfig(seed)
}

// Numeric transformer.
type (
	// Transformer is the numeric transformer with deterministic
	// synthetic weights used by the accuracy experiments.
	Transformer = model.Transformer
	// TransformerSession is one generation session: a Transformer bound
	// to an attention backend with its own KV state.
	TransformerSession = model.Session
)

// NewTransformer builds a numeric transformer with seeded random
// weights for the given architecture.
func NewTransformer(spec ModelSpec, seed int64) (*Transformer, error) {
	return model.NewTransformer(spec, seed)
}

// KV cache and wire protocol.
type (
	// KVCache is HACK's per-head quantized KV cache: along-d_h K
	// partitions, along-sequence V partitions with the RQE FP16 tail,
	// and the SE sum cache.
	KVCache = kvcache.Cache
	// KVCacheConfig parameterizes a KVCache.
	KVCacheConfig = kvcache.Config
	// CacheUsage breaks down a cache's resident bytes.
	CacheUsage = kvcache.Usage
	// KVFrame is one head's quantized KV cache in the prefill→decode
	// wire format, with a checksum.
	KVFrame = netsim.KVFrame
)

// NewKVCache builds an empty quantized KV cache.
func NewKVCache(cfg KVCacheConfig) (*KVCache, error) { return kvcache.New(cfg) }

// FrameFromTensors assembles a wire frame from a cache's K tensor, full
// V blocks and FP16 V tail, as the prefill instance ships them.
func FrameFromTensors(reqID uint64, layer, head, firstToken int,
	k, vFull *Quantized, vTail []float32) (*KVFrame, error) {
	return netsim.FrameFromTensors(reqID, layer, head, firstToken, k, vFull, vTail)
}

// Accuracy metrics.

// Rouge1 returns the unigram F1 overlap between a candidate and a
// reference token sequence.
func Rouge1(candidate, reference []int) float64 { return metrics.Rouge1(candidate, reference) }

// EditSimilarity returns 1 − normalized Levenshtein distance.
func EditSimilarity(a, b []int) float64 { return metrics.EditSimilarity(a, b) }

// Softmax applies a row-wise softmax (useful with the kernel's score
// matrices).
func Softmax(m *Matrix) *Matrix { return tensor.Softmax(m) }
