package hack_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hackkv/hack"
)

// -update regenerates the golden sweep report under testdata/.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpec is the pinned sweep: small enough to run in milliseconds,
// wide enough to exercise the speedup column and both short-sequence
// datasets.
func goldenSpec() hack.SweepSpec {
	return hack.SweepSpec{
		Methods:  []string{"Baseline", "HACK"},
		Datasets: []string{"IMDb", "HumanEval"},
		RPS:      []float64{1.0},
		Requests: 30,
		Seed:     42,
	}
}

func sweepJSON(t *testing.T, spec hack.SweepSpec, opts ...hack.SweepOption) []byte {
	t.Helper()
	res, err := hack.RunSweep(context.Background(), spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepGoldenDeterminism pins the full JSON report: two runs of the
// same spec — serial and at pool width 4 — must be byte-identical, and
// must match the committed golden file (regenerate with -update).
func TestSweepGoldenDeterminism(t *testing.T) {
	serial := sweepJSON(t, goldenSpec(), hack.SweepWorkers(1))
	parallel := sweepJSON(t, goldenSpec(), hack.SweepWorkers(4))
	if !bytes.Equal(serial, parallel) {
		t.Fatal("sweep reports differ between workers=1 and workers=4")
	}
	again := sweepJSON(t, goldenSpec(), hack.SweepWorkers(4))
	if !bytes.Equal(parallel, again) {
		t.Fatal("sweep reports differ between two identical runs")
	}

	// The committed golden bytes pin amd64 float results; other
	// architectures may fuse mul-adds (FMA) into ULP-different values.
	// Run-vs-run and pool-width identity are asserted above on every
	// architecture; the byte pin is enforced where CI runs.
	if runtime.GOARCH != "amd64" && !*update {
		t.Skipf("golden file is amd64-generated; on %s only run-to-run identity is checked", runtime.GOARCH)
	}
	golden := filepath.Join("testdata", "sweep_golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with `go test -run TestSweepGolden -update .`): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("sweep report deviates from %s (regenerate with -update if the change is intended)\ngot %d bytes, want %d",
			golden, len(serial), len(want))
	}
}

// TestEngineRunDeterministic asserts the underlying single-run facade is
// itself reproducible: the same Engine config and seeded workload yield
// byte-identical per-request stats.
func TestEngineRunDeterministic(t *testing.T) {
	run := func() []byte {
		eng, err := hack.New(hack.WithMethod("HACK"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), hack.Workload{
			Dataset: "IMDb", RPS: 1.0, Requests: 40, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("two Engine.Run calls with a fixed seed produced different JSON")
	}
}

// TestEngineProbeDelivery wires WithProbe through a run: events arrive
// in simulation order, cover every request, and observing them does not
// change the result.
func TestEngineProbeDelivery(t *testing.T) {
	runWith := func(probe func(hack.ProbeEvent)) *hack.Result {
		opts := []hack.Option{hack.WithMethod("HACK"), hack.WithPrefillChunk(128)}
		if probe != nil {
			opts = append(opts, hack.WithProbe(probe))
		}
		eng, err := hack.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), hack.Workload{
			Dataset: "IMDb", RPS: 2.0, Requests: 20, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var events []hack.ProbeEvent
	observed := runWith(func(e hack.ProbeEvent) { events = append(events, e) })
	if len(events) == 0 {
		t.Fatal("probe received no events")
	}
	completed := map[int]bool{}
	last := 0.0
	for _, e := range events {
		if e.At < last-1e-9 {
			t.Fatalf("probe event %q at %.6f before prior event at %.6f", e.Kind, e.At, last)
		}
		last = e.At
		if e.Kind == "complete" {
			completed[e.Req] = true
		}
	}
	if len(completed) != 20 {
		t.Fatalf("probe saw %d completions, want 20", len(completed))
	}
	plain := runWith(nil)
	if observed.AvgJCT() != plain.AvgJCT() || len(observed.Requests) != len(plain.Requests) {
		t.Fatal("observing with WithProbe changed the result")
	}
}

func TestSweepCellOrderingAndSpeedup(t *testing.T) {
	spec := goldenSpec()
	res, err := hack.RunSweep(context.Background(), spec, hack.SweepWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Cells), spec.NumCells(); got != want {
		t.Fatalf("got %d cells, want %d", got, want)
	}
	for i, c := range res.Cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d; results must be ordered by cell index", i, c.Index)
		}
		if c.Err != "" {
			t.Fatalf("cell %d failed: %s", i, c.Err)
		}
		if c.AvgJCT <= 0 || c.P99JCT < c.P50JCT {
			t.Fatalf("cell %d has implausible JCTs: %+v", i, c)
		}
		switch c.Method {
		case "Baseline":
			if c.Speedup != 1 {
				t.Fatalf("baseline cell %d speedup %v, want 1", i, c.Speedup)
			}
		default:
			if c.Speedup <= 0 {
				t.Fatalf("cell %d (%s) missing speedup", i, c.Method)
			}
		}
	}
	// Methods share the workload point's trace, so their request mixes
	// match: same dataset ⇒ same per-cell seed.
	if res.Cells[0].Seed != res.Cells[2].Seed {
		t.Fatalf("Baseline and HACK cells over the same dataset drew different seeds: %d vs %d",
			res.Cells[0].Seed, res.Cells[2].Seed)
	}
	if res.Cells[0].Seed == res.Cells[1].Seed {
		t.Fatal("different datasets share a trace seed")
	}
}

func TestSweepUnknownNamesListValidSpellings(t *testing.T) {
	for _, spec := range []hack.SweepSpec{
		{Methods: []string{"nope"}},
		{Datasets: []string{"nope"}},
		{GPUs: []string{"nope"}},
		{Models: []string{"nope"}},
		{Baseline: "nope"},
	} {
		_, err := hack.RunSweep(context.Background(), spec)
		if err == nil {
			t.Fatalf("spec %+v: expected an unknown-name error", spec)
		}
		if !strings.Contains(err.Error(), "valid") && !strings.Contains(err.Error(), "not among") {
			t.Fatalf("error %q does not list valid names", err)
		}
	}
	// The scheduler axis is validated too: an out-of-range policy must
	// fail the sweep, not silently fall back to shortest-queue.
	_, err := hack.RunSweep(context.Background(), hack.SweepSpec{Schedulers: []hack.Scheduler{7}})
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("err = %v, want unknown-scheduler error", err)
	}
}

func TestSweepBaselineMustBeSwept(t *testing.T) {
	_, err := hack.RunSweep(context.Background(), hack.SweepSpec{
		Methods: []string{"HACK"}, Baseline: "CacheGen",
	})
	if err == nil || !strings.Contains(err.Error(), "not among the swept methods") {
		t.Fatalf("err = %v, want baseline-not-swept error", err)
	}
}

// TestSweepCancellationDrains cancels a mid-flight sweep and asserts the
// pool drains without leaking goroutines.
func TestSweepCancellationDrains(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := hack.SweepSpec{Requests: 60, RPS: []float64{0.5}, Seed: 3} // 4 methods x 4 datasets
	var fired int32
	_, err := hack.RunSweep(ctx, spec, hack.SweepWorkers(2),
		hack.SweepProgress(func(done, total int, _ hack.CellResult) {
			if atomic.AddInt32(&fired, 1) == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancelled sweep: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepParallelFaster runs the acceptance grid — 8 cells over the
// two long-sequence datasets — serial and at pool width 4, asserting
// identical bytes always and, on multi-core hosts, a wall-clock win with
// generous slack.
func TestSweepParallelFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	spec := hack.SweepSpec{
		Datasets: []string{"Cocktail", "arXiv"}, // 4 methods x 2 datasets = 8 cells
		Requests: 800,
		RPS:      []float64{0.6},
		Seed:     1,
	}
	if spec.NumCells() < 8 {
		t.Fatalf("acceptance grid has %d cells, want >= 8", spec.NumCells())
	}

	start := time.Now()
	serial := sweepJSON(t, spec, hack.SweepWorkers(1))
	serialDur := time.Since(start)
	start = time.Now()
	parallel := sweepJSON(t, spec, hack.SweepWorkers(4))
	parallelDur := time.Since(start)

	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel sweep report differs from serial")
	}
	// Gate the wall-clock assertion on *measured* CPU parallelism:
	// NumCPU overcounts inside cgroup-quota'd containers, where workers=4
	// cannot physically win. (The pool's speedup is asserted on every
	// host by sweeprun's timer-bound TestMapParallelSpeedup.)
	if p := effectiveParallelism(); p < 1.5 {
		t.Skipf("host shows %.1fx CPU parallelism: serial %v, workers=4 %v (no speedup expected)",
			p, serialDur, parallelDur)
	}
	// Generous slack: ideal is ~4x; require only a 1.25x win.
	if float64(parallelDur) > float64(serialDur)/1.25 {
		t.Errorf("workers=4 (%v) not measurably faster than workers=1 (%v)", parallelDur, serialDur)
	}
}

// probeSink keeps the parallelism probe's busywork observable so the
// compiler cannot eliminate it.
var probeSink atomic.Int64

// effectiveParallelism measures how much real CPU concurrency the host
// grants: the ratio of serial to concurrent wall time for four equal
// fixed-iteration workloads (~1 on a single effective CPU, ~4 on four).
// The work is iteration-bound, not deadline-bound, so time-sharing shows
// up as slowdown.
func effectiveParallelism() float64 {
	work := func(n int) {
		var s int64
		for i := 0; i < n; i++ {
			s += int64(i ^ (i >> 3))
		}
		probeSink.Add(s)
	}
	// Calibrate the per-task size to ~20ms of single-threaded work.
	n := 1 << 20
	for {
		start := time.Now()
		work(n)
		if time.Since(start) >= 20*time.Millisecond {
			break
		}
		n *= 2
	}

	start := time.Now()
	for i := 0; i < 4; i++ {
		work(n)
	}
	serial := time.Since(start)

	var wg sync.WaitGroup
	start = time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(n)
		}()
	}
	wg.Wait()
	return float64(serial) / float64(time.Since(start))
}

func TestSweepMarkdownTable(t *testing.T) {
	res, err := hack.RunSweep(context.Background(), goldenSpec(), hack.SweepWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf, hack.MetricAvgJCT); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"| Method | IMDb | HumanEval |",
		"|---|---|---|",
		"| Baseline |",
		"| HACK |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown output missing %q:\n%s", want, md)
		}
	}

	buf.Reset()
	if err := res.WriteMarkdown(&buf, hack.MetricPeakMem); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%") {
		t.Fatalf("peak-memory pivot has no percentage cells:\n%s", buf.String())
	}
}

// A truncated or hand-filtered result (e.g. deserialized and sliced)
// must render partial blocks, not panic.
func TestSweepMarkdownPartialBlock(t *testing.T) {
	res, err := hack.RunSweep(context.Background(), goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	res.Cells = res.Cells[:1]
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf, hack.MetricAvgJCT); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| HACK | - | - |") {
		t.Fatalf("missing cells not rendered as '-':\n%s", buf.String())
	}
}

func TestSweepCSV(t *testing.T) {
	res, err := hack.RunSweep(context.Background(), goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Cells) {
		t.Fatalf("CSV has %d lines, want header + %d cells", len(lines), len(res.Cells))
	}
	if !strings.HasPrefix(lines[0], "index,model,gpu") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
}

// ExampleRunSweep demonstrates the batch evaluation API: a method x
// dataset grid executed on a worker pool, pivoted into the paper's
// table layout.
func ExampleRunSweep() {
	res, err := hack.RunSweep(context.Background(), hack.SweepSpec{
		Methods:  []string{"Baseline", "HACK"},
		Datasets: []string{"IMDb"},
		RPS:      []float64{1.0},
		Requests: 30,
		Seed:     42,
	}, hack.SweepWorkers(2))
	if err != nil {
		panic(err)
	}
	for _, c := range res.Cells {
		// The margin is ~1.11x here; compare against a threshold rather
		// than printing the float so the example is architecture-stable.
		fmt.Printf("%s/%s beats baseline: %v\n", c.Method, c.Dataset, c.Speedup > 1.05)
	}
	// Output:
	// Baseline/IMDb beats baseline: false
	// HACK/IMDb beats baseline: true
}
