package hack

import (
	"context"
	"fmt"

	"github.com/hackkv/hack/internal/serve"
)

// Live-serving types re-exported from the internal runtime. Where
// Engine.Run prices a workload with the analytic cost model, a listening
// Engine actually executes it: concurrent requests run through the real
// numeric transformer and the homomorphic HACK kernels under continuous
// batching.
type (
	// GenRequest is one live generation job: a token-ID prompt, an
	// optional per-request token budget, stop token, and quantizer seed.
	GenRequest = serve.Request
	// GenToken is one streamed generation event (sequence index + token
	// ID).
	GenToken = serve.Token
	// GenStream delivers one request's tokens in order; Err() reports
	// how the request ended once the channel closes.
	GenStream = serve.Stream
	// ServeSnapshot is a point-in-time view of the live runtime's
	// serving metrics: request accounting, queue depth, batch occupancy,
	// resident KV bytes, and nearest-rank TTFT/TBT/queue-delay
	// percentiles.
	ServeSnapshot = serve.Snapshot
)

// Live-serving sentinel errors.
var (
	// ErrQueueFull load-sheds a submission whose routed admission queue
	// is at capacity.
	ErrQueueFull = serve.ErrQueueFull
	// ErrDraining rejects submissions once shutdown has begun.
	ErrDraining = serve.ErrDraining
)

// ServeConfig sizes the live serving runtime a listening Engine starts.
// The zero value of every field selects a default.
type ServeConfig struct {
	// Model is the numeric architecture to actually execute. The zero
	// value serves the Toy instance (the accuracy experiments' model):
	// catalog-scale specs are priced by Run/Serve but are not
	// numerically servable on a CPU.
	Model ModelSpec
	// ModelSeed seeds the deterministic synthetic weights.
	ModelSeed int64
	// PrefillWorkers is the concurrent prefill fan-out (default 2);
	// 1 selects the deterministic single-worker mode.
	PrefillWorkers int
	// MaxBatch caps the continuous decode batch (default 8).
	MaxBatch int
	// QueueCap bounds each prefill worker's admission queue; full
	// queues load-shed with ErrQueueFull (default 64).
	QueueCap int
	// MaxNewTokens caps tokens generated per request (default 32).
	MaxNewTokens int
	// DecodeParallelism is the goroutine fan-out when stepping the
	// decode batch; outputs are identical at every setting (default:
	// size to the batch; 1 steps serially).
	DecodeParallelism int
	// PrefixCacheBytes, when positive, enables the shared-prefix KV
	// cache tier under that byte budget: quantized Π-aligned KV pages
	// from completed prefills are indexed by prompt prefix, and a later
	// request sharing a cached prefix skips prefill over the matched
	// span while streaming tokens byte-identical to its cold path.
	// Requires a homomorphic engine method with requantization
	// elimination; Listen reports an error otherwise. Note that
	// enabling the tier selects the position-stable rounding mode, so
	// token streams differ from a prefix-disabled deployment at the
	// same seed (each mode stays deterministic per prompt and seed).
	PrefixCacheBytes int64
	// PrefixCachePageTokens is the cache page granularity in tokens; it
	// must be a positive multiple of the method's partition size Π
	// (default: Π itself).
	PrefixCachePageTokens int
	// SpecK, when greater than 1, enables speculative decoding: a cheap
	// draft pass proposes up to SpecK-1 tokens per step and the serving
	// method's full-precision kernels verify the whole window in one
	// batched attention call. Token streams stay byte-identical to the
	// non-speculative path per (prompt, seed) — speculation changes when
	// tokens are produced, never which. 0 and 1 disable. Like
	// PrefixCacheBytes, enabling speculation selects the position-stable
	// rounding mode, so streams differ from a speculation-disabled
	// deployment at the same seed (each mode stays deterministic).
	SpecK int
	// SpecDraft names the draft compression class (see
	// DraftClasses; default "pi128-nearest"). Coarser classes draft
	// faster but are accepted less often.
	SpecDraft string
}

// DraftClasses lists the recognized speculative-draft compression
// classes, sorted, for ServeConfig.SpecDraft.
func DraftClasses() []string { return serve.DraftClasses() }

// DefaultDraftClass is the draft compression class an empty
// ServeConfig.SpecDraft selects.
const DefaultDraftClass = serve.DefaultDraftClass

// WithServeConfig sizes the live runtime started by Engine.Listen.
func WithServeConfig(sc ServeConfig) Option {
	return func(e *Engine) error {
		if sc.PrefillWorkers < 0 || sc.MaxBatch < 0 || sc.QueueCap < 0 ||
			sc.MaxNewTokens < 0 || sc.DecodeParallelism < 0 ||
			sc.PrefixCacheBytes < 0 || sc.PrefixCachePageTokens < 0 ||
			sc.SpecK < 0 {
			return fmt.Errorf("serve config fields must be >= 0 (%+v)", sc)
		}
		e.serveCfg = sc
		return nil
	}
}

// WithPrefixCache enables the shared-prefix KV cache tier under the
// given byte budget (see ServeConfig.PrefixCacheBytes); it composes
// with WithServeConfig regardless of option order.
func WithPrefixCache(budgetBytes int64) Option {
	return func(e *Engine) error {
		if budgetBytes <= 0 {
			return fmt.Errorf("prefix cache budget %d must be positive", budgetBytes)
		}
		e.prefixBytes = budgetBytes
		return nil
	}
}

// WithSpeculation enables speculative decoding with the given window
// size and draft compression class (empty selects the default; see
// ServeConfig.SpecK). It composes with WithServeConfig regardless of
// option order.
func WithSpeculation(k int, draft string) Option {
	return func(e *Engine) error {
		if k < 2 {
			return fmt.Errorf("speculation window %d must be >= 2", k)
		}
		e.specK, e.specDraft = k, draft
		return nil
	}
}

// Server is the live serving runtime started by Engine.Listen: a
// continuous-batching scheduler driving the real quantized kernels,
// with bounded admission queues routed by the engine's scheduler
// policy.
type Server struct {
	rt *serve.Server
}

// Listen starts the live serving runtime for this deployment: requests
// submitted to the returned Server are routed across prefill workers by
// the engine's scheduler policy, prefilled through the real numeric
// transformer, and decoded by a continuous-batching loop running the
// engine method's kernels (homomorphic HACK kernels for HACK-family
// methods; see WithServeConfig for sizing). Cancelling ctx force-drains
// the server in the background; call Shutdown for a graceful drain.
func (e *Engine) Listen(ctx context.Context) (*Server, error) {
	sc := e.serveCfg
	if e.prefixBytes > 0 && sc.PrefixCacheBytes == 0 {
		sc.PrefixCacheBytes = e.prefixBytes
	}
	if e.specK > 0 && sc.SpecK == 0 {
		sc.SpecK, sc.SpecDraft = e.specK, e.specDraft
	}
	backend := serve.BackendForMethod(e.method, e.kernelPar)
	if sc.PrefixCacheBytes > 0 || sc.SpecK > 1 {
		// Both the prefix tier and speculative verification need the
		// position-stable (prefix-shareable) kernel discipline.
		var err error
		if backend, err = serve.PrefixBackendForMethod(e.method, e.kernelPar); err != nil {
			return nil, fmt.Errorf("hack: %w", err)
		}
	}
	rt, err := serve.New(serve.Config{
		Spec:                  sc.Model,
		ModelSeed:             sc.ModelSeed,
		Backend:               backend,
		Scheduler:             e.scheduler,
		PrefillWorkers:        sc.PrefillWorkers,
		MaxBatch:              sc.MaxBatch,
		QueueCap:              sc.QueueCap,
		MaxNewTokens:          sc.MaxNewTokens,
		DecodeParallelism:     sc.DecodeParallelism,
		PrefixCacheBytes:      sc.PrefixCacheBytes,
		PrefixCachePageTokens: sc.PrefixCachePageTokens,
		SpecK:                 sc.SpecK,
		SpecDraft:             sc.SpecDraft,
	})
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-rt.Done():
				// Already drained via Shutdown; nothing to watch.
			case <-ctx.Done():
				expired, cancel := context.WithCancel(context.Background())
				cancel() // already-expired context: force the drain immediately
				_ = rt.Shutdown(expired)
			}
		}()
	}
	return &Server{rt: rt}, nil
}

// Submit admits one generation request and returns its token stream.
// Full queues load-shed with ErrQueueFull; a draining server rejects
// with ErrDraining; cancelling ctx stops the request's stream.
func (s *Server) Submit(ctx context.Context, req GenRequest) (*GenStream, error) {
	st, err := s.rt.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Generate is the blocking convenience wrapper: it submits the request
// and returns the full generated token sequence.
func (s *Server) Generate(ctx context.Context, req GenRequest) ([]int, error) {
	st, err := s.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	var out []int
	for tok := range st.Tokens() {
		out = append(out, tok.ID)
	}
	if err := st.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// Metrics returns the live serving snapshot.
func (s *Server) Metrics() ServeSnapshot { return s.rt.Metrics() }

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.rt.Draining() }

// Model returns the numeric architecture actually being served.
func (s *Server) Model() ModelSpec { return s.rt.Spec() }

// Shutdown gracefully drains the server: submissions are rejected,
// in-flight requests finish, then Shutdown returns. If ctx expires
// first, remaining requests abort and the context error is returned.
func (s *Server) Shutdown(ctx context.Context) error { return s.rt.Shutdown(ctx) }
