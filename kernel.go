package hack

import (
	"math/rand"

	"github.com/hackkv/hack/internal/compress"
	hackcore "github.com/hackkv/hack/internal/hack"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Homomorphic-kernel types re-exported from the internal packages.
type (
	// Matrix is a dense row-major float32 matrix.
	Matrix = tensor.Matrix
	// Quantized is a quantized matrix: INT8-widened codes plus
	// per-partition (min, scale) metadata and the summation-elimination
	// code-sum cache of §5.3.
	Quantized = quant.Tensor
	// QuantConfig parameterizes a quantization pass: code width, the
	// partition size Π, and the rounding mode.
	QuantConfig = quant.Config
	// QuantAxis selects which way partitions run through the matrix.
	QuantAxis = quant.Axis
	// Rounding selects how fractional quantization steps are resolved.
	Rounding = quant.Rounding
	// Ops tallies the work performed by a homomorphic multiplication,
	// split the way the paper's cost analysis splits it.
	Ops = hackcore.Ops
	// MatMulOptions control the homomorphic multiplication; see
	// DefaultMatMulOptions.
	MatMulOptions = hackcore.Options
)

// Quantization-axis and rounding constants.
const (
	// AlongCols partitions each row along the column axis — the Q and K
	// layout (partitions along the head dimension, §5.3).
	AlongCols = quant.AlongCols
	// AlongRows partitions each column along the row axis — the V
	// layout (partitions along the growing sequence dimension).
	AlongRows = quant.AlongRows
	// StochasticRounding makes the quantization error zero-mean (§5.2).
	StochasticRounding = quant.StochasticRounding
	// NearestRounding rounds deterministically to the nearest integer.
	NearestRounding = quant.NearestRounding
)

// Quantize encodes m along the given axis with HACK's asymmetric b-bit
// stochastic quantizer (§5.2): each partition of Π elements stores its
// minimum and scale in FP16 and each value as an unsigned code.
func Quantize(m *Matrix, axis QuantAxis, cfg QuantConfig) (*Quantized, error) {
	return quant.Quantize(m, axis, cfg)
}

// QuantizeInto is Quantize reusing t's storage when it has capacity
// (t may be nil); it returns the re-sliced tensor. Per-token serving
// loops quantize into the same tensor every step without allocating.
func QuantizeInto(t *Quantized, m *Matrix, axis QuantAxis, cfg QuantConfig) (*Quantized, error) {
	return quant.QuantizeInto(t, m, axis, cfg)
}

// DefaultMatMulOptions enables every HACK optimization (summation
// elimination on) with automatic kernel parallelism. Set
// MatMulOptions.Parallelism to bound the per-multiplication worker
// fan-out (1 = serial); results are bit-identical at every setting.
func DefaultMatMulOptions() MatMulOptions { return hackcore.DefaultOptions() }

// MatMul computes the homomorphic-quantized product of a (M×Z, quantized
// along columns) and b (Z×N, quantized along rows) per Eq. (4): the
// integer product of the codes plus per-partition correction terms,
// never dequantizing either operand. It returns the approximated
// real-valued product and the op tally.
func MatMul(a, b *Quantized, opt MatMulOptions) (*Matrix, Ops) {
	return hackcore.MatMul(a, b, opt)
}

// MatMulInto is MatMul with a caller-supplied destination: dst is
// reshaped (reusing its backing array when it has capacity) and
// overwritten with the product. Serving loops reuse one destination per
// stream so the per-token hot path stops allocating.
func MatMulInto(dst *Matrix, a, b *Quantized, opt MatMulOptions) Ops {
	return hackcore.MatMulInto(dst, a, b, opt)
}

// MatMulTransB computes the homomorphic product A·Bᵀ where bT holds B
// row-major quantized along columns — the natural layout for Q·Kᵀ with K
// stored token-major.
func MatMulTransB(a, bT *Quantized, opt MatMulOptions) (*Matrix, Ops) {
	return hackcore.MatMulTransB(a, bT, opt)
}

// MatMulTransBInto is MatMulTransB with a caller-supplied destination,
// reshaped and overwritten like MatMulInto.
func MatMulTransBInto(dst *Matrix, a, bT *Quantized, opt MatMulOptions) Ops {
	return hackcore.MatMulTransBInto(dst, a, bT, opt)
}

// MatMulScalar and MatMulTransBScalar are the retained straight-line
// reference kernels: no packing, tiling, SIMD or parallelism. They define
// the semantics the fast kernels are validated against bit for bit, and
// they are the baseline the kernel microbenchmarks (BENCH_kernels.json)
// measure speedups over.

// MatMulScalar is the scalar reference implementation of MatMul.
func MatMulScalar(a, b *Quantized, opt MatMulOptions) (*Matrix, Ops) {
	return hackcore.MatMulScalar(a, b, opt)
}

// MatMulTransBScalar is the scalar reference implementation of
// MatMulTransB.
func MatMulTransBScalar(a, bT *Quantized, opt MatMulOptions) (*Matrix, Ops) {
	return hackcore.MatMulTransBScalar(a, bT, opt)
}

// DequantKVOps returns the per-head floating-point cost of dequantizing
// an L-token KV cache — the per-iteration work the baselines pay and
// HACK eliminates (§5.3).
func DequantKVOps(headDim, l int) int64 { return hackcore.DequantKVOps(headDim, l) }

// DecodeApproxOpsSE returns the per-head cost of one decode step's
// Eq. (4) approximation with summation elimination.
func DecodeApproxOpsSE(headDim, l int) int64 { return hackcore.DecodeApproxOpsSE(headDim, l) }

// DecodeApproxOps returns the per-head approximation cost without
// summation elimination (the §7.4 ablation).
func DecodeApproxOps(headDim, l int) int64 { return hackcore.DecodeApproxOps(headDim, l) }

// EntropyRatio reports the CacheGen-style entropy-coded size of a
// quantized tensor's codes relative to raw bit-packing, verifying the
// codec round-trips losslessly.
func EntropyRatio(t *Quantized) (float64, error) {
	return compress.MeasureRatio(compress.EntropyCodec{}, t)
}

// Matrix constructors and comparison helpers for working with the
// kernel.

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.New(rows, cols) }

// MatrixFromSlice wraps row-major data (not copied) as a matrix.
func MatrixFromSlice(rows, cols int, data []float32) *Matrix {
	return tensor.FromSlice(rows, cols, data)
}

// RandNormal fills a rows×cols matrix with N(0, stddev²) draws.
func RandNormal(rng *rand.Rand, rows, cols int, stddev float64) *Matrix {
	return tensor.RandNormal(rng, rows, cols, stddev)
}

// ExactMatMul is the float32 reference product A·B.
func ExactMatMul(a, b *Matrix) *Matrix { return tensor.MatMul(a, b) }

// ExactMatMulTransB is the float32 reference product A·Bᵀ.
func ExactMatMulTransB(a, b *Matrix) *Matrix { return tensor.MatMulTransB(a, b) }

// MaxAbsDiff returns the largest element-wise absolute difference.
func MaxAbsDiff(a, b *Matrix) float64 { return tensor.MaxAbsDiff(a, b) }

// RelError returns ‖a−b‖_F / ‖b‖_F, the relative Frobenius error.
func RelError(a, b *Matrix) float64 { return tensor.RelFrobenius(a, b) }
