// Live serving through the public API: start the continuous-batching
// runtime with Engine.Listen, submit concurrent requests that run
// through the real homomorphic HACK kernels, stream their tokens, watch
// the live metrics, and drain gracefully.
//
//	go run ./examples/served
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/hackkv/hack"
)

func main() {
	eng, err := hack.New(
		hack.WithMethod("HACK"),
		hack.WithScheduler(hack.LoadAware),
		hack.WithServeConfig(hack.ServeConfig{
			PrefillWorkers: 2,
			MaxBatch:       8,
			MaxNewTokens:   12,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s with the %s kernels\n\n", srv.Model().Name, eng.Method().Name)

	// Eight concurrent clients, each streaming its own generation. The
	// decode batcher re-forms the batch every step, so these all share
	// batched decode iterations.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prompt := []int{1 + i, 2 + i, 3 + i, 4 + i, 5 + i}
			st, err := srv.Submit(context.Background(), hack.GenRequest{
				Prompt: prompt, MaxNewTokens: 8, Seed: int64(i),
			})
			if err != nil {
				log.Printf("request %d: %v", i, err)
				return
			}
			var toks []int
			for tok := range st.Tokens() {
				toks = append(toks, tok.ID)
			}
			if err := st.Err(); err != nil {
				log.Printf("request %d: %v", i, err)
				return
			}
			fmt.Printf("request %d: %v\n", i, toks)
		}(i)
	}
	wg.Wait()

	snap := srv.Metrics()
	fmt.Printf("\ncompleted %d requests, %d tokens; batch occupancy %.2f; "+
		"ttft p50 %.1fms p99 %.1fms; tbt p50 %.2fms\n",
		snap.Completed, snap.TokensStreamed, snap.BatchOccupancy,
		1e3*snap.TTFT.P50, 1e3*snap.TTFT.P99, 1e3*snap.TBT.P50)

	// Determinism: the same (prompt, seed) streams the same bytes no
	// matter what it was batched with.
	again, err := srv.Generate(context.Background(), hack.GenRequest{
		Prompt: []int{1, 2, 3, 4, 5}, MaxNewTokens: 8, Seed: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request 0 replayed: %v\n", again)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
