// End-to-end "summarization" on the numeric transformer: prefill an
// arXiv-length prompt, generate with the exact reference and with each
// serving method, score the outputs (ROUGE-1 against the reference), and
// ship one head's actual quantized KV cache through the wire protocol —
// the full Fig. 5 workflow in one program.
//
//	go run ./examples/summarize
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"github.com/hackkv/hack"
)

func main() {
	spec := hack.ModelSpec{Name: "demo", ShortName: "D", Layers: 2, Hidden: 128,
		Heads: 1, KVHeads: 1, HeadDim: 128, MLPDim: 256, Vocab: 128, MaxContext: 1 << 20}
	m, err := hack.NewTransformer(spec, 21)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prompt := make([]int, 448) // arXiv-scaled prompt (see experiments)
	for i := range prompt {
		prompt[i] = rng.Intn(spec.Vocab)
	}
	const maxNew = 32

	// Reference generation with exact arithmetic.
	ref, err := m.NewSession(hack.ExactAttention{})
	if err != nil {
		log.Fatal(err)
	}
	refOut, err := ref.Generate(prompt, maxNew, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d tokens; reference summary: %d tokens\n\n", len(prompt), len(refOut))

	cg, err := hack.NewDequantAttention(hack.DequantAttentionConfig{
		MethodName: "CacheGen", Pi: 96, KVBits: 2,
		Rounding: hack.StochasticRounding, Seed: 5, WireFactor: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	hk, err := hack.NewHACKAttention(hack.DefaultHACKAttentionConfig(5))
	if err != nil {
		log.Fatal(err)
	}

	// Score each method two ways: next-token agreement when forced along
	// the reference trajectory (the per-step fidelity measure), and
	// ROUGE-1 of its free-running generation. At this toy scale a single
	// flipped token sends free generation down a different trajectory,
	// so agreement is the informative number (see EXPERIMENTS.md).
	fmt.Printf("%-9s %10s %8s %12s %12s\n", "method", "agreement", "ROUGE-1", "cache bytes", "wire bytes")
	for _, b := range []hack.AttentionBackend{hack.FP16Attention{}, cg, hk} {
		// Teacher-forced agreement.
		tf, err := m.NewSession(b)
		if err != nil {
			log.Fatal(err)
		}
		match := 0
		got, err := tf.Prefill(prompt)
		if err != nil {
			log.Fatal(err)
		}
		if got == refOut[0] {
			match++
		}
		for i := 0; i+1 < len(refOut); i++ {
			got, err = tf.Decode(refOut[i])
			if err != nil {
				log.Fatal(err)
			}
			if got == refOut[i+1] {
				match++
			}
		}
		agreement := float64(match) / float64(len(refOut))

		// Free-running generation.
		sess, err := m.NewSession(b)
		if err != nil {
			log.Fatal(err)
		}
		out, err := sess.Generate(prompt, maxNew, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %9.0f%% %8.3f %12d %12d\n", b.Name(), 100*agreement,
			hack.Rouge1(out, refOut), sess.CacheUsageTotal(), sess.WireSizeTotal())
	}

	// Ship a quantized KV cache through the wire protocol, as the
	// prefill instance would (⑦ in Fig. 5).
	cache, err := hack.NewKVCache(hack.KVCacheConfig{
		HeadDim: spec.HeadDim, Pi: 64, KVBits: 2,
		Rounding: hack.StochasticRounding, RNG: rng, RQE: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	k := hack.RandNormal(rng, len(prompt), spec.HeadDim, 1)
	v := hack.RandNormal(rng, len(prompt), spec.HeadDim, 1)
	if err := cache.AppendPrefill(k, v); err != nil {
		log.Fatal(err)
	}
	frame, err := hack.FrameFromTensors(1, 0, 0, refOut[0], cache.K, cache.VFull, cache.VTail.Data)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	n, err := frame.WriteTo(&wire)
	if err != nil {
		log.Fatal(err)
	}
	var recv hack.KVFrame
	if _, err := recv.ReadFrom(&wire); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire transfer: one head's quantized KV = %d bytes (FP16 would be %d);\n",
		n, 2*2*2*len(prompt)*spec.HeadDim)
	fmt.Printf("decode side received request %d, first token %d, %d K rows — checksum verified\n",
		recv.RequestID, recv.FirstToken, recv.KRows)
}
