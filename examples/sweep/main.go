// Batch evaluation through the sweep API: declare a method × dataset ×
// load grid, execute it on a bounded worker pool with streamed progress,
// and pivot the results into the paper's table layout — then prove the
// determinism contract by running the same spec twice and comparing the
// reports byte for byte.
//
//	go run ./examples/sweep
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"github.com/hackkv/hack"
)

func main() {
	// A three-axis grid: the paper's four evaluated methods over the two
	// short-sequence datasets at two arrival rates — 16 cells, each a
	// full discrete-event simulation.
	spec := hack.SweepSpec{
		Methods:  []string{"Baseline", "CacheGen", "KVQuant", "HACK"},
		Datasets: []string{"IMDb", "HumanEval"},
		RPS:      []float64{0.8, 1.2},
		Requests: 80,
		Seed:     42,
	}
	fmt.Printf("sweeping %d cells\n", spec.NumCells())

	// Progress streams in completion order while the pool is running;
	// the final report is ordered by cell index regardless.
	res, err := hack.RunSweep(context.Background(), spec,
		hack.SweepWorkers(4),
		hack.SweepProgress(func(done, total int, r hack.CellResult) {
			fmt.Printf("  [%2d/%d] %-8s %-9s %.2g rps  jct %5.2fs\n",
				done, total, r.Method, r.Dataset, r.RPS, r.AvgJCT)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The Table 5 pivot: method rows x dataset columns, one table per
	// deployment point (here, one per arrival rate).
	fmt.Println("\naverage JCT, pivoted:")
	if err := res.WriteMarkdown(os.Stdout, hack.MetricAvgJCT); err != nil {
		log.Fatal(err)
	}
	fmt.Println("speedup over the FP16 baseline:")
	if err := res.WriteMarkdown(os.Stdout, hack.MetricSpeedup); err != nil {
		log.Fatal(err)
	}

	// Determinism contract: identical specs yield byte-identical JSON
	// reports — per-cell trace seeds derive from the spec, and results
	// are ordered by cell index, not completion order.
	var first, second bytes.Buffer
	if err := res.WriteJSON(&first); err != nil {
		log.Fatal(err)
	}
	res2, err := hack.RunSweep(context.Background(), spec, hack.SweepWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	if err := res2.WriteJSON(&second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-ran at a different pool width: reports identical = %v (%d bytes)\n",
		bytes.Equal(first.Bytes(), second.Bytes()), first.Len())
}
