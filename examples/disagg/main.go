// Disaggregated serving comparison: simulate the paper's default
// deployment (Llama-3.1 70B, A10G prefill pool, A100 decode pool,
// Cocktail workload) under all four methods and print the Fig. 9/10-style
// summary.
//
//	go run ./examples/disagg
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/hackkv/hack"
)

func main() {
	// One shared trace so every method serves identical requests.
	reqs, err := hack.GenerateTrace("Cocktail", 0.6, 150, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d Cocktail requests (avg prompt %.0f tokens) at 0.6 RPS\n\n",
		len(reqs), hack.MeanInputLen(reqs))

	fmt.Printf("%-9s %8s %9s %8s %9s %14s %8s %9s %6s\n",
		"method", "avg JCT", "prefill", "comm", "dequant", "/approx decode", "peak mem", "swapped", "vs base")
	var baseJCT float64
	for _, m := range hack.EvaluatedMethods() {
		eng, err := hack.New(
			hack.WithModel("L"),
			hack.WithGPU("A10G"),
			hack.WithMethodProfile(m),
			hack.WithReplicas(5, 4),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(context.Background(), hack.Workload{Trace: reqs})
		if err != nil {
			log.Fatal(err)
		}
		if m.Name == "Baseline" {
			baseJCT = res.AvgJCT()
		}
		at := res.AvgTimes()
		fmt.Printf("%-9s %7.1fs %8.1fs %7.1fs %8.2fs %13.1fs %7.0f%% %9d %5.0f%%\n",
			m.Name, res.AvgJCT(), at.Prefill+at.Queue, at.Comm, at.Overhead, at.Decode,
			100*res.PeakMemFrac, res.SwappedCount, 100*(1-res.AvgJCT()/baseJCT))
	}
	fmt.Println("\nHACK wins by cutting KV transfer ~7x, skipping per-step dequantization")
	fmt.Println("(paying only the tiny Eq. (4) correction) and running attention on INT8.")
}
