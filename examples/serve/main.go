// Serving through the public Engine API: configure a deployment with
// functional options, stream per-request completions as the simulation
// progresses, enforce a deadline through context cancellation, and sweep
// the registries to compare every serving method on the same trace.
//
//	go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/hackkv/hack"
)

func main() {
	// The registries enumerate everything the library can serve.
	fmt.Printf("methods:  %v\n", hack.Methods())
	fmt.Printf("datasets: %v\n", hack.Datasets())
	fmt.Printf("GPUs:     %v\n", hack.GPUs())
	fmt.Printf("models:   %v\n\n", hack.Models())

	// A deployment with a streaming callback: the first completions
	// arrive while the simulation is still running.
	streamed := 0
	eng, err := hack.New(
		hack.WithModel("L"),
		hack.WithGPU("A10G"),
		hack.WithMethod("HACK"),
		hack.WithReplicas(5, 4),
		hack.WithPipeline(true),
		hack.WithStream(func(r hack.RequestStats) {
			if streamed < 3 {
				fmt.Printf("  streamed: req %2d  jct %5.2fs  (prefill %.2fs, comm %.2fs, decode %.2fs)\n",
					r.ID, r.JCT(), r.Prefill, r.Comm, r.Decode)
			}
			streamed++
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eng)

	w := hack.Workload{Dataset: "Cocktail", RPS: 0.5, Requests: 80, Seed: 42}
	res, err := eng.Run(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ... %d more; avg JCT %.2fs, p99 %.2fs\n\n",
		streamed-3, res.AvgJCT(), res.P99JCT())

	// Context cancellation: a one-microsecond deadline aborts the run
	// between simulator events.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := eng.Run(ctx, w); err != nil {
		fmt.Printf("deadline run: %v\n\n", err)
	}

	// Sweep the method registry over one shared trace.
	reqs, err := eng.Trace(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %8s %8s\n", "method", "avg JCT", "p99")
	for _, name := range []string{"Baseline", "CacheGen", "KVQuant", "HACK"} {
		me, err := hack.New(
			hack.WithModel("L"),
			hack.WithGPU("A10G"),
			hack.WithMethod(name),
			hack.WithReplicas(5, 4),
			hack.WithPipeline(true),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := me.Run(context.Background(), hack.Workload{Trace: reqs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %7.2fs %7.2fs\n", name, res.AvgJCT(), res.P99JCT())
	}
}
