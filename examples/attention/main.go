// Attention backends side by side: prefill a long context on one
// attention head, run decode steps, and compare every method's output
// fidelity, cache footprint, wire size and per-step work — the §5
// mechanics in miniature.
//
//	go run ./examples/attention
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/hackkv/hack"
)

func main() {
	const (
		dh    = 128
		l     = 768
		steps = 16
	)
	rng := rand.New(rand.NewSource(11))
	q := hack.RandNormal(rng, l, dh, 1)
	k := hack.RandNormal(rng, l, dh, 1)
	v := hack.RandNormal(rng, l, dh, 1)

	cg, err := hack.NewDequantAttention(hack.DequantAttentionConfig{
		MethodName: "CacheGen", Pi: 96, KVBits: 2,
		Rounding: hack.StochasticRounding, Seed: 3, WireFactor: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	hk, err := hack.NewHACKAttention(hack.DefaultHACKAttentionConfig(3))
	if err != nil {
		log.Fatal(err)
	}
	backends := []hack.AttentionBackend{hack.ExactAttention{}, hack.FP16Attention{}, cg, hk}

	type state struct {
		head  hack.AttentionHead
		total hack.AttentionStats
	}
	states := map[string]*state{}

	// Prefill every backend with the same context.
	for _, b := range backends {
		h, err := b.NewHead(dh)
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
			log.Fatal(err)
		}
		states[b.Name()] = &state{head: h}
	}

	// Decode steps with identical inputs; collect the exact outputs as
	// the reference.
	errSum := map[string]float64{}
	var ref *hack.Matrix
	for i := 0; i < steps; i++ {
		dq := hack.RandNormal(rng, 1, dh, 1)
		dk := hack.RandNormal(rng, 1, dh, 1)
		dv := hack.RandNormal(rng, 1, dh, 1)
		for _, b := range backends {
			st := states[b.Name()]
			out, stats, err := st.head.Decode(dq.Clone(), dk.Clone(), dv.Clone())
			if err != nil {
				log.Fatal(err)
			}
			st.total.Add(stats)
			// Heads own their returned output until their next call
			// (see AttentionHead), so keep only this step's reference —
			// the Exact head runs first in the backend order.
			if b.Name() == "Exact" {
				ref = out
			} else {
				errSum[b.Name()] += hack.RelError(out, ref) / steps
			}
		}
	}

	fmt.Printf("%-9s %10s %12s %12s %12s %12s %10s\n",
		"method", "rel error", "cache bytes", "wire bytes", "int MACs", "dequant ops", "approx ops")
	for _, b := range backends {
		st := states[b.Name()]
		name := b.Name()
		relerr := "-"
		if name != "Exact" {
			relerr = fmt.Sprintf("%.4f", errSum[name])
		}
		fmt.Printf("%-9s %10s %12d %12d %12d %12d %10d\n",
			name, relerr, st.head.CacheUsage().Total(), st.head.WireSize(),
			st.total.IntOps, st.total.DequantOps, st.total.ApproxOps)
	}
	fmt.Println("\nHACK: zero dequantization, ~7x smaller cache and wire than FP16;")
	fmt.Println("the dequant baselines repeat a full-cache dequantization every step.")
}
