// Attention backends side by side: prefill a long context on one
// attention head, run decode steps, and compare every method's output
// fidelity, cache footprint, wire size and per-step work — the §5
// mechanics in miniature.
//
//	go run ./examples/attention
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func main() {
	const (
		dh    = 128
		l     = 768
		steps = 16
	)
	rng := rand.New(rand.NewSource(11))
	q := tensor.RandNormal(rng, l, dh, 1)
	k := tensor.RandNormal(rng, l, dh, 1)
	v := tensor.RandNormal(rng, l, dh, 1)

	cg, err := attention.NewDequant(attention.DequantConfig{
		MethodName: "CacheGen", Pi: 96, KVBits: 2,
		Rounding: quant.StochasticRounding, Seed: 3, WireFactor: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	hk, err := attention.NewHACK(attention.DefaultHACKConfig(3))
	if err != nil {
		log.Fatal(err)
	}
	backends := []attention.Backend{attention.ExactBackend{}, attention.FP16Backend{}, cg, hk}

	type state struct {
		head  attention.Head
		total attention.Stats
	}
	states := map[string]*state{}
	var refOut []*tensor.Matrix

	// Prefill every backend with the same context.
	for _, b := range backends {
		h, err := b.NewHead(dh)
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
			log.Fatal(err)
		}
		states[b.Name()] = &state{head: h}
	}

	// Decode steps with identical inputs; collect the exact outputs as
	// the reference.
	errSum := map[string]float64{}
	for i := 0; i < steps; i++ {
		dq := tensor.RandNormal(rng, 1, dh, 1)
		dk := tensor.RandNormal(rng, 1, dh, 1)
		dv := tensor.RandNormal(rng, 1, dh, 1)
		for _, b := range backends {
			st := states[b.Name()]
			out, stats, err := st.head.Decode(dq.Clone(), dk.Clone(), dv.Clone())
			if err != nil {
				log.Fatal(err)
			}
			st.total.Add(stats)
			if b.Name() == "Exact" {
				refOut = append(refOut, out)
			} else {
				errSum[b.Name()] += tensor.RelFrobenius(out, refOut[i]) / steps
			}
		}
	}

	fmt.Printf("%-9s %10s %12s %12s %12s %12s %10s\n",
		"method", "rel error", "cache bytes", "wire bytes", "int MACs", "dequant ops", "approx ops")
	for _, b := range backends {
		st := states[b.Name()]
		name := b.Name()
		relerr := "-"
		if name != "Exact" {
			relerr = fmt.Sprintf("%.4f", errSum[name])
		}
		fmt.Printf("%-9s %10s %12d %12d %12d %12d %10d\n",
			name, relerr, st.head.CacheUsage().Total(), st.head.WireSize(),
			st.total.IntOps, st.total.DequantOps, st.total.ApproxOps)
	}
	fmt.Println("\nHACK: zero dequantization, ~7x smaller cache and wire than FP16;")
	fmt.Println("the dequant baselines repeat a full-cache dequantization every step.")
}
