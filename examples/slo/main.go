// SLO-aware serving: a mixed chat+batch workload judged against
// TTFT/TBT targets. Interactive chat turns (short IMDb-shaped prompts)
// arrive alongside long batch-summarization jobs (Cocktail-shaped), and
// the example compares three deployments on the same merged trace:
//
//   - the paper's shortest-queue scheduler, where chat turns are
//     head-of-line blocked behind 16K-token batch prefills and the
//     interactive TTFT tail blows past the target,
//
//   - load-aware routing with chunked prefill, which interleaves chat
//     prompts between batch chunks and recovers the TTFT tail, and
//
//   - the slo scheduler, which additionally picks each request's
//     compression method: full-fidelity Baseline for the chat traffic
//     that can afford it, HACK for the long jobs whose transfer would
//     otherwise blow the time-between-tokens target.
//
//     go run ./examples/slo
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/hackkv/hack"
)

// ttftP99 returns the nearest-rank p99 TTFT of the subset of requests
// selected by keep.
func ttftP99(reqs []hack.RequestStats, keep func(hack.RequestStats) bool) float64 {
	var xs []float64
	for _, r := range reqs {
		if keep(r) {
			xs = append(xs, r.TTFT)
		}
	}
	sort.Float64s(xs)
	if len(xs) == 0 {
		return 0
	}
	i := int(0.99 * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

func main() {
	// Mixed workload: chat turns at 2.5 rps interleaved with long batch
	// jobs at 0.3 rps, merged into one arrival-ordered trace.
	chat, err := hack.GenerateTrace("IMDb", 2.5, 80, 7)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := hack.GenerateTrace("Cocktail", 0.3, 16, 11)
	if err != nil {
		log.Fatal(err)
	}
	trace := append(append([]hack.Request(nil), chat...), batch...)
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].ArrivalS < trace[j].ArrivalS })
	for i := range trace {
		trace[i].ID = i
	}
	isChat := func(r hack.RequestStats) bool { return r.InputLen <= 1000 }
	fmt.Printf("mixed workload: %d chat + %d batch requests\n\n", len(chat), len(batch))

	// An interactivity SLO: first token within half a second, steady
	// decoding after that. The batch jobs' own 16K-token prefills take
	// ~7s, so they can never attain it — the ceiling is the chat share
	// (~83%) and the schedulers differ in how much of it they save.
	const ttft, tbt = 0.5, 0.6 // seconds
	deployments := []struct {
		name string
		opts []hack.Option
	}{
		{"shortest-queue", []hack.Option{
			hack.WithScheduler(hack.ShortestQueue),
		}},
		{"load-aware + chunked prefill", []hack.Option{
			hack.WithScheduler(hack.LoadAware),
			hack.WithPrefillChunk(512),
		}},
		{"slo admission", []hack.Option{
			hack.WithScheduler(hack.SLOAware),
			hack.WithPrefillChunk(512),
			hack.WithAdmitMethods("Baseline", "HACK"),
		}},
	}
	fmt.Printf("%-30s %14s %15s %12s %16s\n",
		"scheduler", "chat ttft p99", "batch ttft p99", "attainment", "baseline-served")
	for _, d := range deployments {
		opts := append([]hack.Option{
			hack.WithModel("L"),
			hack.WithGPU("A10G"),
			hack.WithMethod("HACK"),
			hack.WithReplicas(3, 4),
			hack.WithSLO(ttft, tbt),
		}, d.opts...)
		eng, err := hack.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(context.Background(), hack.Workload{Trace: trace})
		if err != nil {
			log.Fatal(err)
		}
		fullFidelity := 0
		for _, r := range res.Requests {
			if r.Method == "Baseline" {
				fullFidelity++
			}
		}
		sum := res.Summarize(eng.SLO())
		verdict := "meets the chat SLO"
		if chatP99 := ttftP99(res.Requests, isChat); chatP99 > ttft {
			verdict = "misses the chat SLO"
		}
		fmt.Printf("%-30s %13.2fs %14.2fs %11.1f%% %11d/%d  %s\n",
			d.name,
			ttftP99(res.Requests, isChat),
			ttftP99(res.Requests, func(r hack.RequestStats) bool { return !isChat(r) }),
			100*sum.Attainment, fullFidelity, len(res.Requests), verdict)
	}
	fmt.Printf("\ntargets: ttft <= %.1fs, tbt <= %.1fs\n", ttft, tbt)
	fmt.Println("chunked prefill interleaves chat prompts between 512-token batch chunks;")
	fmt.Println("slo admission keeps fidelity for everything that can afford it.")
}
