// Quickstart: quantize matrices and multiply them homomorphically.
//
// This walks the core HACK primitive end to end: asymmetric 2-bit
// stochastic quantization of K, INT8 quantization of Q, the quantized
// matrix product with the Eq. (4) approximation, and the comparison
// against both the exact product and dequantize-then-multiply.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/hackkv/hack"
)

func main() {
	const (
		dh = 128 // head dimension
		l  = 512 // cached tokens
		pi = 64  // partition size Π
	)
	rng := rand.New(rand.NewSource(7))

	// A decode-step query against a cache of keys.
	q := hack.RandNormal(rng, 1, dh, 1)
	k := hack.RandNormal(rng, l, dh, 1)

	// Quantize: Q at INT8, K at INT2, partitions of Π along d_h (§5.3).
	qq, err := hack.Quantize(q, hack.AlongCols, hack.QuantConfig{
		Bits: 8, Partition: pi, Rounding: hack.StochasticRounding, RNG: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	kq, err := hack.Quantize(k, hack.AlongCols, hack.QuantConfig{
		Bits: 2, Partition: pi, Rounding: hack.StochasticRounding, RNG: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K compressed to %.1f%% of FP16 (%d -> %d bytes)\n",
		100*(1-kq.CompressionRatio()), 2*l*dh, kq.Size(false).Total())

	// Homomorphic product: computed directly on the codes, never
	// dequantized.
	scores, ops := hack.MatMulTransB(qq, kq, hack.DefaultMatMulOptions())

	// It is algebraically the same value dequantize-then-multiply
	// produces...
	viaDequant := hack.ExactMatMulTransB(qq.Dequantize(), kq.Dequantize())
	fmt.Printf("homomorphic vs dequantized: max diff %.2e\n",
		hack.MaxAbsDiff(scores, viaDequant))

	// ...but costs integer MACs plus a tiny correction instead of a full
	// dequantization pass per step.
	exact := hack.ExactMatMulTransB(q, k)
	fmt.Printf("relative error vs exact FP32: %.3f (2-bit K)\n",
		hack.RelError(scores, exact))
	fmt.Printf("work: %d INT8 MACs + %d correction flops; dequantization would add %d flops every step\n",
		ops.IntMACs, ops.ApproxFlops, hack.DequantKVOps(dh, l))
}
