// Quickstart: quantize matrices and multiply them homomorphically.
//
// This walks the core HACK primitive end to end: asymmetric 2-bit
// stochastic quantization of K, INT8 quantization of Q, the quantized
// matrix product with the Eq. (4) approximation, and the comparison
// against both the exact product and dequantize-then-multiply.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/hackkv/hack/internal/hack"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func main() {
	const (
		dh = 128 // head dimension
		l  = 512 // cached tokens
		pi = 64  // partition size Π
	)
	rng := rand.New(rand.NewSource(7))

	// A decode-step query against a cache of keys.
	q := tensor.RandNormal(rng, 1, dh, 1)
	k := tensor.RandNormal(rng, l, dh, 1)

	// Quantize: Q at INT8, K at INT2, partitions of Π along d_h (§5.3).
	qq, err := quant.Quantize(q, quant.AlongCols, quant.Config{
		Bits: 8, Partition: pi, Rounding: quant.StochasticRounding, RNG: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	kq, err := quant.Quantize(k, quant.AlongCols, quant.Config{
		Bits: 2, Partition: pi, Rounding: quant.StochasticRounding, RNG: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K compressed to %.1f%% of FP16 (%d -> %d bytes)\n",
		100*(1-kq.CompressionRatio()), 2*l*dh, kq.Size(false).Total())

	// Homomorphic product: computed directly on the codes, never
	// dequantized.
	scores, ops := hack.MatMulTransB(qq, kq, hack.DefaultOptions())

	// It is algebraically the same value dequantize-then-multiply
	// produces...
	viaDequant := tensor.MatMulTransB(qq.Dequantize(), kq.Dequantize())
	fmt.Printf("homomorphic vs dequantized: max diff %.2e\n",
		tensor.MaxAbsDiff(scores, viaDequant))

	// ...but costs integer MACs plus a tiny correction instead of a full
	// dequantization pass per step.
	exact := tensor.MatMulTransB(q, k)
	fmt.Printf("relative error vs exact FP32: %.3f (2-bit K)\n",
		tensor.RelFrobenius(scores, exact))
	fmt.Printf("work: %d INT8 MACs + %d correction flops; dequantization would add %d flops every step\n",
		ops.IntMACs, ops.ApproxFlops, hack.DequantKVOps(dh, l))
}
