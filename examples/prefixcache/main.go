// Shared-prefix KV reuse through the public API: enable the prefix
// cache tier with WithPrefixCache, send a batch of requests that share
// a long system prompt, and watch warm requests skip prefill over the
// cached span while streaming exactly the tokens their cold run would
// have — then read the hit/miss/bytes-saved accounting.
//
//	go run ./examples/prefixcache
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/hackkv/hack"
)

func main() {
	eng, err := hack.New(
		hack.WithMethod("HACK"),
		hack.WithPrefixCache(16<<20), // 16 MiB of quantized KV pages
		hack.WithServeConfig(hack.ServeConfig{
			PrefillWorkers: 1, DecodeParallelism: 1, // deterministic mode
			MaxBatch: 8, MaxNewTokens: 8,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s with the %s kernels, prefix cache on\n\n",
		srv.Model().Name, eng.Method().Name)

	// A shared "system prompt" longer than one Π=64 partition, plus a
	// short per-user suffix — the shape of chat traffic.
	system := make([]int, 96)
	for i := range system {
		system[i] = (7*i + 3) % srv.Model().Vocab
	}
	ask := func(user []int) []int {
		toks, err := srv.Generate(context.Background(), hack.GenRequest{
			Prompt: append(append([]int{}, system...), user...), Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return toks
	}

	start := time.Now()
	cold := ask([]int{9, 9, 9})
	coldTook := time.Since(start)

	start = time.Now()
	warm := ask([]int{9, 9, 9}) // same prompt: full prefix hit
	warmTook := time.Since(start)

	other := ask([]int{5, 5, 5}) // shared system prompt, different user turn

	fmt.Printf("cold: %v  (%.2fms)\n", cold, float64(coldTook.Microseconds())/1e3)
	fmt.Printf("warm: %v  (%.2fms)\n", warm, float64(warmTook.Microseconds())/1e3)
	fmt.Printf("new user turn, shared system prompt: %v\n\n", other)
	if fmt.Sprint(cold) != fmt.Sprint(warm) {
		log.Fatal("warm stream diverged from cold — this must never happen")
	}

	pc := srv.Metrics().PrefixCache
	fmt.Printf("prefix cache: %d hits, %d misses, %d tokens of prefill skipped, "+
		"%d KV bytes saved, %d/%d bytes used\n",
		pc.Hits, pc.Misses, pc.TokensReused, pc.BytesSaved, pc.BytesUsed, pc.BytesBudget)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
