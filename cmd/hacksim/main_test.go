package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the CLI body in-process and returns its stdout, stderr and
// error — no os/exec involved.
func exec(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// Unknown registry names are usage errors (exit 2 in main) and list the
// valid spellings, per the CLI convention.
func TestUnknownNamesAreUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string // a valid name the error must list
	}{
		{[]string{"-scheduler", "nope"}, "shortest-queue"},
		{[]string{"-scheduler", "nope"}, "load-aware"},
		{[]string{"-scheduler", "nope"}, "slo"},
		{[]string{"-model", "nope"}, "L"},
		{[]string{"-gpu", "nope"}, "A10G"},
		{[]string{"-dataset", "nope"}, "Cocktail"},
		{[]string{"-method", "nope"}, "HACK"},
	}
	for _, c := range cases {
		_, _, err := exec(t, c.args...)
		if err == nil {
			t.Fatalf("args %v: expected an error", c.args)
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Fatalf("args %v: error %v is not a usage error", c.args, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not list %q", c.args, err, c.want)
		}
	}
}

func TestBadFlagValueIsUsageError(t *testing.T) {
	for _, args := range [][]string{
		{"-rps", "not-a-number"},
		{"-slo-ttft", "-1"},
		{"-slo-tbt", "-0.5"},
		{"-prefill-chunk", "-1"},
	} {
		_, _, err := exec(t, args...)
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("args %v: err = %v, want usage error", args, err)
		}
	}
}

// Runtime failures (valid spellings, failing run) are plain errors, not
// usage errors: they exit 1.
func TestRuntimeErrorIsNotUsageError(t *testing.T) {
	_, _, err := exec(t, "-trace-in", filepath.Join(t.TempDir(), "missing.json"))
	if err == nil {
		t.Fatal("expected a missing-trace error")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("runtime error %v misclassified as usage error", err)
	}
}

func TestSmallRunPrintsSummary(t *testing.T) {
	out, _, err := exec(t, "-dataset", "IMDb", "-rps", "2", "-n", "8")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"avg JCT", "throughput", "ttft p50", "peak decode memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SLO (") {
		t.Error("SLO report printed without targets set")
	}
}

func TestSLOReportAndSchedulerFlag(t *testing.T) {
	out, _, err := exec(t, "-dataset", "IMDb", "-rps", "2", "-n", "8",
		"-scheduler", "loadaware", "-slo-ttft", "5", "-slo-tbt", "0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "load-aware") {
		t.Errorf("deployment line does not name the scheduler:\n%s", out)
	}
	if !strings.Contains(out, "SLO (ttft 5.00s, tbt 0.500s): attainment") {
		t.Errorf("missing SLO attainment line:\n%s", out)
	}
}

func TestSLOSchedulerRuns(t *testing.T) {
	out, _, err := exec(t, "-dataset", "IMDb", "-rps", "2", "-n", "8",
		"-scheduler", "slo", "-slo-ttft", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "attainment") {
		t.Errorf("missing attainment:\n%s", out)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	out1, _, err := exec(t, "-dataset", "IMDb", "-rps", "2", "-n", "6", "-trace-out", path)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := exec(t, "-dataset", "IMDb", "-trace-in", path)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the recorded trace reproduces the run byte-for-byte.
	if out1 != out2 {
		t.Errorf("replayed run differs:\n%s\nvs\n%s", out1, out2)
	}
}
