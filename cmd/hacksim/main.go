// Command hacksim runs one disaggregated-serving simulation and prints
// the per-request JCT decomposition summary.
//
//	hacksim -model L -gpu A10G -dataset Cocktail -method HACK -rps 0.5 -n 200
//
// Methods: Baseline, CacheGen, KVQuant, HACK, HACK/SE, HACK/RQE,
// HACK32, HACK128, FP4, FP6, FP8.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
	"github.com/hackkv/hack/internal/workload"
)

func main() {
	var (
		modelTag = flag.String("model", "L", "model tag: M, P, Y, L, F")
		gpu      = flag.String("gpu", "A10G", "prefill GPU: A10G, V100, T4, L4, A100")
		dsName   = flag.String("dataset", "Cocktail", "dataset: IMDb, arXiv, Cocktail, HumanEval")
		method   = flag.String("method", "HACK", "serving method")
		rps      = flag.Float64("rps", 0.5, "request rate (requests/second)")
		n        = flag.Int("n", 200, "number of requests")
		seed     = flag.Int64("seed", 42, "trace seed")
		prefillN = flag.Int("prefill", 5, "prefill replicas")
		decodeN  = flag.Int("decode", 4, "decode replicas")
		maxBatch = flag.Int("batch", 256, "max decode batch per replica")
		pipeline = flag.Bool("pipeline", false, "overlap transfer with prefill")
		traceOut = flag.String("trace-out", "", "record the generated trace to this JSON file")
		traceIn  = flag.String("trace-in", "", "replay a trace recorded with -trace-out (overrides -rps/-n/-seed)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "hacksim:", err)
		os.Exit(1)
	}
	spec, err := model.ByShortName(*modelTag)
	if err != nil {
		die(err)
	}
	in, err := cluster.ByGPUName(*gpu)
	if err != nil {
		die(err)
	}
	ds, err := workload.ByName(*dsName)
	if err != nil {
		die(err)
	}
	ds = ds.CappedTo(spec.MaxContext)
	m, err := cluster.MethodByName(*method)
	if err != nil {
		die(err)
	}
	cm, err := cluster.NewCostModel(spec, in, cluster.A100(), cluster.DefaultCostParams())
	if err != nil {
		die(err)
	}
	var reqs []workload.Request
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			die(err)
		}
		reqs, err = workload.LoadTrace(f)
		f.Close()
		if err != nil {
			die(err)
		}
	} else {
		reqs, err = workload.Trace(ds, *rps, *n, *seed)
		if err != nil {
			die(err)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				die(err)
			}
			if err := workload.SaveTrace(f, ds.Name, *rps, *seed, reqs); err != nil {
				f.Close()
				die(err)
			}
			if err := f.Close(); err != nil {
				die(err)
			}
		}
	}
	res, err := sim.Run(sim.Config{
		CM: cm, Method: m,
		PrefillReplicas: *prefillN, DecodeReplicas: *decodeN,
		MaxBatch: *maxBatch, MemCapFrac: 0.95, Pipeline: *pipeline,
	}, reqs)
	if err != nil {
		die(err)
	}

	fmt.Printf("%s | %s | %s | %d requests\n", cm, ds.Name, m.Name, len(reqs))
	fmt.Printf("avg JCT %.2fs   p50 %.2fs   p99 %.2fs\n", res.AvgJCT(), res.P50JCT(), res.P99JCT())
	at := res.AvgTimes()
	fmt.Printf("avg times: queue %.2fs  prefill %.2fs  quant %.3fs  comm %.2fs  dequant/approx %.3fs  decode %.2fs (kv mem %.2fs)\n",
		at.Queue, at.Prefill, at.Quant, at.Comm, at.Overhead, at.Decode, at.KVMem)
	r := res.AvgRatios()
	fmt.Printf("avg ratios: prefill %.1f%%  quant %.2f%%  comm %.1f%%  dequant/approx %.1f%%  decode %.1f%% (kv mem %.1f%%)\n",
		100*r.Prefill, 100*r.Quant, 100*r.Comm, 100*r.Overhead, 100*r.Decode, 100*r.KVMem)
	fmt.Printf("peak decode memory %.1f%%   swapped requests %d\n", 100*res.PeakMemFrac, res.SwappedCount)
}
