// Command hacksim runs one disaggregated-serving simulation and prints
// the per-request JCT decomposition summary.
//
//	hacksim -model L -gpu A10G -dataset Cocktail -method HACK -rps 0.5 -n 200
//
// Run with -h for the flag list; unknown -model/-gpu/-dataset/-method
// values exit with status 2 and list the valid names.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/hackkv/hack"
)

func main() {
	var (
		modelTag = flag.String("model", "L", "model tag: M, P, Y, L, F")
		gpu      = flag.String("gpu", "A10G", "prefill GPU: A10G, V100, T4, L4, A100")
		dsName   = flag.String("dataset", "Cocktail", "dataset: IMDb, arXiv, Cocktail, HumanEval")
		method   = flag.String("method", "HACK", "serving method")
		rps      = flag.Float64("rps", 0.5, "request rate (requests/second)")
		n        = flag.Int("n", 200, "number of requests")
		seed     = flag.Int64("seed", 42, "trace seed")
		prefillN = flag.Int("prefill", 5, "prefill replicas")
		decodeN  = flag.Int("decode", 4, "decode replicas")
		maxBatch = flag.Int("batch", 256, "max decode batch per replica")
		pipeline = flag.Bool("pipeline", false, "overlap transfer with prefill")
		stream   = flag.Bool("stream", false, "print each request's stats as it completes")
		traceOut = flag.String("trace-out", "", "record the generated trace to this JSON file")
		traceIn  = flag.String("trace-in", "", "replay a trace recorded with -trace-out (overrides -rps/-n/-seed)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "hacksim:", err)
		os.Exit(1)
	}
	// Flag-style usage errors: report the valid names and exit 2.
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "hacksim:", err)
		os.Exit(2)
	}
	if _, err := hack.ModelNamed(*modelTag); err != nil {
		usage(err)
	}
	if _, err := hack.GPUNamed(*gpu); err != nil {
		usage(err)
	}
	if _, err := hack.DatasetNamed(*dsName); err != nil {
		usage(err)
	}
	if _, err := hack.MethodNamed(*method); err != nil {
		usage(err)
	}

	opts := []hack.Option{
		hack.WithModel(*modelTag),
		hack.WithGPU(*gpu),
		hack.WithMethod(*method),
		hack.WithReplicas(*prefillN, *decodeN),
		hack.WithMaxBatch(*maxBatch),
		hack.WithPipeline(*pipeline),
	}
	if *stream {
		opts = append(opts, hack.WithStream(func(r hack.RequestStats) {
			fmt.Printf("req %3d done at %7.2fs  jct %6.2fs  (queue %.2fs prefill %.2fs comm %.2fs decode %.2fs)\n",
				r.ID, r.Done, r.JCT(), r.Queue, r.Prefill, r.Comm, r.Decode)
		}))
	}
	eng, err := hack.New(opts...)
	if err != nil {
		die(err)
	}

	w := hack.Workload{Dataset: *dsName, RPS: *rps, Requests: *n, Seed: *seed}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			die(err)
		}
		reqs, err := hack.LoadTrace(f)
		f.Close()
		if err != nil {
			die(err)
		}
		w = hack.Workload{Trace: reqs}
	} else if *traceOut != "" {
		reqs, err := eng.Trace(w)
		if err != nil {
			die(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			die(err)
		}
		if err := hack.SaveTrace(f, *dsName, *rps, *seed, reqs); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		w = hack.Workload{Trace: reqs}
	}

	res, err := eng.Run(context.Background(), w)
	if err != nil {
		die(err)
	}

	fmt.Printf("%s | %s | %d requests\n", eng, *dsName, len(res.Requests))
	fmt.Printf("avg JCT %.2fs   p50 %.2fs   p99 %.2fs\n", res.AvgJCT(), res.P50JCT(), res.P99JCT())
	at := res.AvgTimes()
	fmt.Printf("avg times: queue %.2fs  prefill %.2fs  quant %.3fs  comm %.2fs  dequant/approx %.3fs  decode %.2fs (kv mem %.2fs)\n",
		at.Queue, at.Prefill, at.Quant, at.Comm, at.Overhead, at.Decode, at.KVMem)
	r := res.AvgRatios()
	fmt.Printf("avg ratios: prefill %.1f%%  quant %.2f%%  comm %.1f%%  dequant/approx %.1f%%  decode %.1f%% (kv mem %.1f%%)\n",
		100*r.Prefill, 100*r.Quant, 100*r.Comm, 100*r.Overhead, 100*r.Decode, 100*r.KVMem)
	fmt.Printf("peak decode memory %.1f%%   swapped requests %d\n", 100*res.PeakMemFrac, res.SwappedCount)
}
