// Command hacksim runs one disaggregated-serving simulation and prints
// the per-request JCT decomposition summary, plus the SLO report when
// targets are set.
//
//	hacksim -model L -gpu A10G -dataset Cocktail -method HACK -rps 0.5 -n 200
//	hacksim -scheduler slo -slo-ttft 20 -slo-tbt 0.5 -dataset Cocktail
//
// Run with -h for the flag list; unknown -model/-gpu/-dataset/-method/
// -scheduler values exit with status 2 and list the valid names.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/hackkv/hack"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	var ue usageError
	if errors.As(err, &ue) {
		if !ue.quiet {
			fmt.Fprintln(os.Stderr, "hacksim:", err)
		}
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "hacksim:", err)
	os.Exit(1)
}

// usageError marks flag-style errors (unknown names, bad values) that
// exit with status 2 instead of 1, per the CLI convention. quiet marks
// errors the flag package already reported to stderr, so main does not
// print them twice.
type usageError struct {
	err   error
	quiet bool
}

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// run executes the simulation for the given argument list, writing the
// report to stdout and flag diagnostics to stderr. It is the whole CLI
// minus process exit, so tests drive it without os/exec.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hacksim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelTag  = fs.String("model", "L", "model tag: M, P, Y, L, F")
		gpu       = fs.String("gpu", "A10G", "prefill GPU: A10G, V100, T4, L4, A100")
		dsName    = fs.String("dataset", "Cocktail", "dataset: IMDb, arXiv, Cocktail, HumanEval")
		method    = fs.String("method", "HACK", "serving method")
		scheduler = fs.String("scheduler", "shortest-queue",
			"placement policy: "+strings.Join(hack.Schedulers(), ", "))
		rps      = fs.Float64("rps", 0.5, "request rate (requests/second)")
		n        = fs.Int("n", 200, "number of requests")
		seed     = fs.Int64("seed", 42, "trace seed")
		prefillN = fs.Int("prefill", 5, "prefill replicas")
		decodeN  = fs.Int("decode", 4, "decode replicas")
		maxBatch = fs.Int("batch", 256, "max decode batch per replica")
		pipeline = fs.Bool("pipeline", false, "overlap transfer with prefill")
		chunk    = fs.Int("prefill-chunk", 0, "chunked prefill: max tokens per pass (0 = whole prompts)")
		preempt  = fs.Bool("preempt", false, "decode-side preemption with KV re-transfer")
		sloTTFT  = fs.Float64("slo-ttft", 0, "time-to-first-token target in seconds (0 = untracked)")
		sloTBT   = fs.Float64("slo-tbt", 0, "time-between-tokens target in seconds (0 = untracked)")
		stream   = fs.Bool("stream", false, "print each request's stats as it completes")
		traceOut = fs.String("trace-out", "", "record the generated trace to this JSON file")
		traceIn  = fs.String("trace-in", "", "replay a trace recorded with -trace-out (overrides -rps/-n/-seed)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return usageError{err: err, quiet: true}
	}

	// Flag-style usage errors: report the valid names and exit 2.
	if _, err := hack.ModelNamed(*modelTag); err != nil {
		return usageError{err: err}
	}
	if _, err := hack.GPUNamed(*gpu); err != nil {
		return usageError{err: err}
	}
	if _, err := hack.DatasetNamed(*dsName); err != nil {
		return usageError{err: err}
	}
	if _, err := hack.MethodNamed(*method); err != nil {
		return usageError{err: err}
	}
	sched, err := hack.SchedulerNamed(*scheduler)
	if err != nil {
		return usageError{err: err}
	}
	if *sloTTFT < 0 || *sloTBT < 0 {
		return usageError{err: fmt.Errorf("SLO targets %v/%v must be >= 0", *sloTTFT, *sloTBT)}
	}
	if *chunk < 0 {
		return usageError{err: fmt.Errorf("prefill chunk %d must be >= 0", *chunk)}
	}

	opts := []hack.Option{
		hack.WithModel(*modelTag),
		hack.WithGPU(*gpu),
		hack.WithMethod(*method),
		hack.WithScheduler(sched),
		hack.WithReplicas(*prefillN, *decodeN),
		hack.WithMaxBatch(*maxBatch),
		hack.WithPipeline(*pipeline),
		hack.WithPrefillChunk(*chunk),
		hack.WithPreemption(*preempt),
		hack.WithSLO(*sloTTFT, *sloTBT),
	}
	if *stream {
		opts = append(opts, hack.WithStream(func(r hack.RequestStats) {
			fmt.Fprintf(stdout, "req %3d done at %7.2fs  jct %6.2fs  ttft %6.2fs  (queue %.2fs prefill %.2fs comm %.2fs decode %.2fs)\n",
				r.ID, r.Done, r.JCT(), r.TTFT, r.Queue, r.Prefill, r.Comm, r.Decode)
		}))
	}
	eng, err := hack.New(opts...)
	if err != nil {
		return err
	}

	w := hack.Workload{Dataset: *dsName, RPS: *rps, Requests: *n, Seed: *seed}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			return err
		}
		reqs, err := hack.LoadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		w = hack.Workload{Trace: reqs}
	} else if *traceOut != "" {
		reqs, err := eng.Trace(w)
		if err != nil {
			return err
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := hack.SaveTrace(f, *dsName, *rps, *seed, reqs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		w = hack.Workload{Trace: reqs}
	}

	res, err := eng.Run(context.Background(), w)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s | %s | %s | %d requests\n", eng, sched, *dsName, len(res.Requests))
	fmt.Fprintf(stdout, "avg JCT %.2fs   p50 %.2fs   p99 %.2fs\n", res.AvgJCT(), res.P50JCT(), res.P99JCT())
	at := res.AvgTimes()
	fmt.Fprintf(stdout, "avg times: queue %.2fs  prefill %.2fs  quant %.3fs  comm %.2fs  dequant/approx %.3fs  decode %.2fs (kv mem %.2fs)\n",
		at.Queue, at.Prefill, at.Quant, at.Comm, at.Overhead, at.Decode, at.KVMem)
	r := res.AvgRatios()
	fmt.Fprintf(stdout, "avg ratios: prefill %.1f%%  quant %.2f%%  comm %.1f%%  dequant/approx %.1f%%  decode %.1f%% (kv mem %.1f%%)\n",
		100*r.Prefill, 100*r.Quant, 100*r.Comm, 100*r.Overhead, 100*r.Decode, 100*r.KVMem)
	fmt.Fprintf(stdout, "peak decode memory %.1f%%   swapped requests %d   preempted %d\n",
		100*res.PeakMemFrac, res.SwappedCount, res.PreemptedCount)

	sum := res.Summarize(eng.SLO())
	fmt.Fprintf(stdout, "throughput %.3f req/s   ttft p50 %.2fs p99 %.2fs   tbt p50 %.3fs p99 %.3fs\n",
		sum.ThroughputRPS, sum.TTFT.P50, sum.TTFT.P99, sum.TBT.P50, sum.TBT.P99)
	if *sloTTFT > 0 || *sloTBT > 0 {
		fmt.Fprintf(stdout, "SLO (ttft %.2fs, tbt %.3fs): attainment %.1f%% (ttft %.1f%%, tbt %.1f%%)\n",
			*sloTTFT, *sloTBT, 100*sum.Attainment, 100*sum.TTFTAttainment, 100*sum.TBTAttainment)
	}
	return nil
}
