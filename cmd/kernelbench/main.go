// Command kernelbench measures the homomorphic kernel hot paths — the
// packed/tiled/SIMD fast kernels against the retained scalar reference,
// the quantizer, and the end-to-end attention decode step — and writes
// the results to BENCH_kernels.json so the kernel performance trajectory
// is tracked in-repo from PR to PR.
//
// Usage:
//
//	go run ./cmd/kernelbench [-o BENCH_kernels.json] [-quick]
//
// The shapes mirror internal/hack/bench_test.go: decode-shaped Q·Kᵀ
// (1×128 · 4096×128ᵀ) and prefill-shaped P·V (256×2048 · 2048×128) at
// Π=32 and Π=128. The JSON records ns/op, bytes/op and allocs/op per
// benchmark plus the fast-over-scalar speedups the acceptance targets
// track (≥3× decode, ≥2× prefill).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/hack"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_kernels.json schema.
type Report struct {
	// Host context: speedups are comparable across runs on the same
	// class of machine; absolute ns/op are not portable.
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
	// Speedups are fast-kernel time over scalar-reference time for the
	// same operands.
	Speedups map[string]float64 `json:"speedups_vs_scalar"`
}

func quantize(rng *rand.Rand, rows, cols, bits, pi int, axis quant.Axis) *quant.Tensor {
	return quant.MustQuantize(tensor.RandNormal(rng, rows, cols, 1), axis,
		quant.Config{Bits: bits, Partition: pi, Rounding: quant.NearestRounding})
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output path")
	quick := flag.Bool("quick", false, "smaller operands for a fast smoke run")
	flag.Parse()

	decodeL, prefillM, prefillZ := 4096, 256, 2048
	attnL := 2048
	if *quick {
		decodeL, prefillM, prefillZ, attnL = 512, 32, 256, 256
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Speedups:  map[string]float64{},
	}
	add := func(r Result) Result {
		rep.Benchmarks = append(rep.Benchmarks, r)
		fmt.Printf("%-42s %12.0f ns/op %10d B/op %6d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		return r
	}

	opt := hack.DefaultOptions()
	for _, pi := range []int{32, 128} {
		rng := rand.New(rand.NewSource(1))
		a := quantize(rng, 1, 128, 8, pi, quant.AlongCols)
		kT := quantize(rng, decodeL, 128, 2, pi, quant.AlongCols)
		dst := &tensor.Matrix{}
		fast := add(measure(fmt.Sprintf("MatMulTransB/decode_1x128x%d/pi%d", decodeL, pi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hack.MatMulTransBInto(dst, a, kT, opt)
			}
		}))
		scalar := add(measure(fmt.Sprintf("MatMulTransBScalar/decode_1x128x%d/pi%d", decodeL, pi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hack.MatMulTransBScalar(a, kT, opt)
			}
		}))
		rep.Speedups[fmt.Sprintf("decode_pi%d", pi)] = scalar.NsPerOp / fast.NsPerOp
	}

	// Speculative-decoding batched verify: scoring a k-token draft window
	// in one k-row Q·Kᵀ call versus the k single-row calls sequential
	// decode would issue over the same cache. The batched call hits the
	// column-outer verify tiling and the four-row register-blocked MADD
	// kernel, so each loaded cache row is scored against every pending
	// draft query. The speedup is per verify window, batch over k singles.
	{
		const specK = 8
		pi := 128
		rng := rand.New(rand.NewSource(6))
		qs := quantize(rng, specK, 128, 8, pi, quant.AlongCols)
		kT := quantize(rng, decodeL, 128, 2, pi, quant.AlongCols)
		rows := make([]*quant.Tensor, specK)
		for i := range rows {
			var err error
			rows[i], err = qs.SliceRows(i, i+1)
			if err != nil {
				log.Fatal(err)
			}
		}
		dst := &tensor.Matrix{}
		batch := add(measure(fmt.Sprintf("SpecVerify/batch_%dx128x%d/pi%d", specK, decodeL, pi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hack.MatMulTransBInto(dst, qs, kT, opt)
			}
		}))
		single := add(measure(fmt.Sprintf("SpecVerify/%dx_single_1x128x%d/pi%d", specK, decodeL, pi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range rows {
					hack.MatMulTransBInto(dst, q, kT, opt)
				}
			}
		}))
		rep.Speedups["spec_decode"] = single.NsPerOp / batch.NsPerOp
	}

	for _, pi := range []int{32, 128} {
		rng := rand.New(rand.NewSource(2))
		p := quantize(rng, prefillM, prefillZ, 8, pi, quant.AlongCols)
		v := quantize(rng, prefillZ, 128, 2, pi, quant.AlongRows)
		dst := &tensor.Matrix{}
		fast := add(measure(fmt.Sprintf("MatMul/prefill_%dx%dx128/pi%d", prefillM, prefillZ, pi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hack.MatMulInto(dst, p, v, opt)
			}
		}))
		scalar := add(measure(fmt.Sprintf("MatMulScalar/prefill_%dx%dx128/pi%d", prefillM, prefillZ, pi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hack.MatMulScalar(p, v, opt)
			}
		}))
		rep.Speedups[fmt.Sprintf("prefill_pi%d", pi)] = scalar.NsPerOp / fast.NsPerOp
	}

	for _, bench := range []struct {
		name     string
		bits, pi int
	}{{"Quantize/512x128_8bit/pi32", 8, 32}, {"Quantize/512x128_2bit/pi128", 2, 128}} {
		bench := bench
		rng := rand.New(rand.NewSource(3))
		m := tensor.RandNormal(rng, 512, 128, 1)
		cfg := quant.Config{Bits: bench.bits, Partition: bench.pi, Rounding: quant.NearestRounding}
		var qt *quant.Tensor
		add(measure(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				qt, err = quant.QuantizeInto(qt, m, quant.AlongCols, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	add(measure(fmt.Sprintf("AttentionDecode/HACK_L%d/pi64", attnL), benchAttention(func() (attention.Backend, error) {
		return attention.NewHACK(attention.DefaultHACKConfig(11))
	}, attnL)))
	add(measure(fmt.Sprintf("AttentionDecode/CacheGen_L%d", attnL), benchAttention(func() (attention.Backend, error) {
		return attention.NewDequant(attention.DequantConfig{MethodName: "CacheGen", Pi: 96, KVBits: 2,
			Rounding: quant.StochasticRounding, Seed: 12, WireFactor: 0.9})
	}, attnL)))

	// Shared-prefix prefill skip: a cold prefill over the whole prompt
	// versus restoring the leading 3/4 from cached pages and resuming
	// over the suffix. Caching a fixed fraction keeps the ratio
	// comparable between -quick and full operand sizes.
	{
		cached := attnL / 4 * 3
		coldR, warmR := benchPrefixPrefill(attnL, cached)
		cold := add(coldR)
		warm := add(warmR)
		rep.Speedups["prefix_warm_prefill"] = cold.NsPerOp / warm.NsPerOp
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedups vs scalar: decode pi128 %.2fx, pi32 %.2fx; prefill pi128 %.2fx, pi32 %.2fx; spec verify %.2fx\n",
		rep.Speedups["decode_pi128"], rep.Speedups["decode_pi32"],
		rep.Speedups["prefill_pi128"], rep.Speedups["prefill_pi32"],
		rep.Speedups["spec_decode"])
	fmt.Printf("wrote %s\n", *out)
}

// benchPrefixPrefill measures the shared-prefix warm path against the
// cold one at the head level: cold prefills all l tokens; warm restores
// the first cached tokens from exported pages and resumes over the
// suffix. Both use the same prefix-shareable backend, so the ratio is
// the per-head TTFT saving a cache hit buys.
func benchPrefixPrefill(l, cached int) (cold, warm Result) {
	mk := func() attention.Head {
		cfg := attention.DefaultHACKConfig(13)
		cfg.PrefixShareable = true
		backend, err := attention.NewHACK(cfg)
		if err != nil {
			log.Fatal(err)
		}
		h, err := backend.NewHead(128)
		if err != nil {
			log.Fatal(err)
		}
		return h
	}
	rng := rand.New(rand.NewSource(5))
	q := tensor.RandNormal(rng, l, 128, 1)
	k := tensor.RandNormal(rng, l, 128, 1)
	v := tensor.RandNormal(rng, l, 128, 1)

	cold = measure(fmt.Sprintf("PrefixPrefill/cold_L%d/pi64", l), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := mk().Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})

	donor := mk()
	if _, _, err := donor.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
		log.Fatal(err)
	}
	pk, pv, err := donor.(attention.PrefixPageExporter).ExportPrefixPages(0, cached)
	if err != nil {
		log.Fatal(err)
	}
	cfg := attention.DefaultHACKConfig(13)
	cfg.PrefixShareable = true
	backend, err := attention.NewHACK(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sq, sk, sv := sliceRows(q, cached, l), sliceRows(k, cached, l), sliceRows(v, cached, l)
	warm = measure(fmt.Sprintf("PrefixPrefill/warm_L%d_cached%d/pi64", l, cached), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Restore consumes its page tensors (resume appends to
			// them), so clone per iteration — exactly what a real hit
			// does when it decodes wire frames into fresh tensors.
			ck, err := pk.SliceRows(0, pk.Rows)
			if err != nil {
				b.Fatal(err)
			}
			cv, err := pv.SliceRows(0, pv.Rows)
			if err != nil {
				b.Fatal(err)
			}
			h, err := backend.RestorePrefixHead(128, ck, cv)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := h.(attention.PrefixResumer).ResumePrefill(sq.Clone(), sk.Clone(), sv.Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})
	return cold, warm
}

func sliceRows(m *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(hi-lo, m.Cols)
	for i := lo; i < hi; i++ {
		copy(out.Row(i-lo), m.Row(i))
	}
	return out
}

// benchAttention returns a benchmark body running one-token decode steps
// against a prefilled head of the given backend.
func benchAttention(mk func() (attention.Backend, error), l int) func(b *testing.B) {
	return func(b *testing.B) {
		backend, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		h, err := backend.NewHead(128)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		if _, _, err := h.Prefill(tensor.RandNormal(rng, l, 128, 1),
			tensor.RandNormal(rng, l, 128, 1), tensor.RandNormal(rng, l, 128, 1)); err != nil {
			b.Fatal(err)
		}
		dq := tensor.RandNormal(rng, 1, 128, 1)
		dk := tensor.RandNormal(rng, 1, 128, 1)
		dv := tensor.RandNormal(rng, 1, 128, 1)
		if _, _, err := h.Decode(dq, dk, dv); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := h.Decode(dq, dk, dv); err != nil {
				b.Fatal(err)
			}
		}
	}
}
