// Command benchguard is the kernel-bench regression gate CI runs: it
// compares a fresh cmd/kernelbench report against the committed
// BENCH_kernels.json baseline on the fast-over-scalar speedups — the
// one metric that is portable across hosts and operand sizes — and
// fails when any speedup regressed beyond the tolerance.
//
//	benchguard -baseline BENCH_kernels.json -fresh /tmp/fresh.json -tol 0.30
//
// A speedup below baseline·(1−tol) is a regression (exit 1). A speedup
// above baseline·(1+tol) is only a warning: faster is welcome, but the
// drift is printed so an improved kernel eventually gets a refreshed
// committed baseline. Missing keys in the fresh report fail; extra
// fresh keys (new benchmarks) are reported and pass.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	var ue usageError
	if errors.As(err, &ue) {
		if !ue.quiet {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
		}
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

// usageError marks flag-style errors that exit 2 instead of 1, per the
// CLI convention.
type usageError struct {
	err   error
	quiet bool
}

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// report is the slice of the kernelbench JSON schema the guard reads.
type report struct {
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Speedups  map[string]float64 `json:"speedups_vs_scalar"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Speedups) == 0 {
		return nil, fmt.Errorf("%s: no speedups_vs_scalar section", path)
	}
	return &r, nil
}

// run executes the comparison, writing the verdict table to stdout. It
// is the whole CLI minus process exit, so tests drive it without
// os/exec.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "BENCH_kernels.json", "committed baseline report")
		freshPath = fs.String("fresh", "", "fresh kernelbench report to judge (required)")
		tol       = fs.Float64("tol", 0.30, "allowed fractional slowdown before failing (0.30 = -30%)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usageError{err: err, quiet: true}
	}
	if *freshPath == "" {
		return usageError{err: fmt.Errorf("-fresh is required")}
	}
	if *tol <= 0 || *tol >= 1 {
		return usageError{err: fmt.Errorf("tolerance %v outside (0, 1)", *tol)}
	}

	base, err := load(*basePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	keys := make([]string, 0, len(base.Speedups))
	for k := range base.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(stdout, "kernel speedup guard: baseline %s (%d CPU) vs fresh %s (%d CPU), tolerance ±%.0f%%\n",
		base.GoVersion, base.NumCPU, fresh.GoVersion, fresh.NumCPU, 100**tol)
	regressions := 0
	for _, k := range keys {
		b := base.Speedups[k]
		f, ok := fresh.Speedups[k]
		if !ok {
			fmt.Fprintf(stdout, "  FAIL %-16s missing from fresh report\n", k)
			regressions++
			continue
		}
		delta := f/b - 1
		switch {
		case f < b*(1-*tol):
			fmt.Fprintf(stdout, "  FAIL %-16s %6.2fx -> %6.2fx (%+.0f%%): slower than tolerance\n",
				k, b, f, 100*delta)
			regressions++
		case f > b*(1+*tol):
			fmt.Fprintf(stdout, "  WARN %-16s %6.2fx -> %6.2fx (%+.0f%%): faster than baseline band; "+
				"consider refreshing the committed baseline\n", k, b, f, 100*delta)
		default:
			fmt.Fprintf(stdout, "  ok   %-16s %6.2fx -> %6.2fx (%+.0f%%)\n", k, b, f, 100*delta)
		}
	}
	extra := 0
	for k := range fresh.Speedups {
		if _, ok := base.Speedups[k]; !ok {
			fmt.Fprintf(stdout, "  new  %-16s %6.2fx (not in baseline)\n", k, fresh.Speedups[k])
			extra++
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d speedups regressed beyond ±%.0f%%", regressions, len(keys), 100**tol)
	}
	fmt.Fprintf(stdout, "all %d speedups within tolerance (%d new)\n", len(keys), extra)
	return nil
}
