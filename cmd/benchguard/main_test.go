package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name string, speedups map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(map[string]any{
		"go_version": "go1.22", "num_cpu": 1, "speedups_vs_scalar": speedups,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func exec(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestWithinToleranceOK(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"decode_pi64": 4.0, "prefill_pi64": 8.0})
	fresh := writeReport(t, "fresh.json", map[string]float64{"decode_pi64": 3.2, "prefill_pi64": 9.0})
	out, err := exec(t, "-baseline", base, "-fresh", fresh)
	if err != nil {
		t.Fatalf("within tolerance failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all 2 speedups within tolerance") {
		t.Errorf("missing pass summary:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"decode_pi64": 4.0})
	fresh := writeReport(t, "fresh.json", map[string]float64{"decode_pi64": 2.0}) // -50% < -30%
	out, err := exec(t, "-baseline", base, "-fresh", fresh)
	if err == nil {
		t.Fatalf("regression passed:\n%s", out)
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("regression misclassified as usage error: %v", err)
	}
	if !strings.Contains(out, "FAIL decode_pi64") {
		t.Errorf("missing FAIL line:\n%s", out)
	}
}

func TestFasterOnlyWarns(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"decode_pi64": 4.0})
	fresh := writeReport(t, "fresh.json", map[string]float64{"decode_pi64": 9.0}) // +125%
	out, err := exec(t, "-baseline", base, "-fresh", fresh)
	if err != nil {
		t.Fatalf("faster run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "WARN decode_pi64") {
		t.Errorf("missing WARN line:\n%s", out)
	}
}

func TestMissingKeyFails(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"decode_pi64": 4.0, "gone": 2.0})
	fresh := writeReport(t, "fresh.json", map[string]float64{"decode_pi64": 4.0})
	if out, err := exec(t, "-baseline", base, "-fresh", fresh); err == nil {
		t.Fatalf("missing key passed:\n%s", out)
	}
}

func TestNewKeyPassesAndIsReported(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"decode_pi64": 4.0})
	fresh := writeReport(t, "fresh.json", map[string]float64{"decode_pi64": 4.0, "brand_new": 3.0})
	out, err := exec(t, "-baseline", base, "-fresh", fresh)
	if err != nil {
		t.Fatalf("new key failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "new  brand_new") {
		t.Errorf("missing new-key line:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{}, // -fresh required
		{"-fresh", "x", "-tol", "0"},
		{"-fresh", "x", "-tol", "1.5"},
		{"-no-such-flag"},
	} {
		_, err := exec(t, args...)
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("args %v: err = %v, want usage error", args, err)
		}
	}
}

func TestUnreadableReportIsRuntimeError(t *testing.T) {
	base := writeReport(t, "base.json", map[string]float64{"decode_pi64": 4.0})
	_, err := exec(t, "-baseline", base, "-fresh", filepath.Join(t.TempDir(), "missing.json"))
	if err == nil {
		t.Fatal("expected an error")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("runtime error misclassified as usage error: %v", err)
	}
}

// TestGuardsCommittedBaseline sanity-checks the committed baseline file
// itself parses and has the four tracked speedups.
func TestGuardsCommittedBaseline(t *testing.T) {
	r, err := load(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"decode_pi32", "decode_pi128", "prefill_pi32", "prefill_pi128"} {
		if r.Speedups[k] <= 1 {
			t.Errorf("committed baseline speedup %s = %v, want > 1x", k, r.Speedups[k])
		}
	}
}
