// Command hacksweep runs a multi-config experiment grid — the paper's
// method × dataset × GPU × load sweeps — on a bounded worker pool and
// reports the aggregate.
//
//	hacksweep                                  # full method x dataset grid, markdown
//	hacksweep -metric peakmem                  # Table 5's metric
//	hacksweep -gpus A10G,V100 -rps 0.4,0.8 -format csv
//	hacksweep -format json -o sweep.json       # machine-readable report
//
// Identical invocations produce byte-identical reports at any -workers
// setting. Unknown -methods/-datasets/-gpus/-models values exit with
// status 2 and list the valid names.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"github.com/hackkv/hack"
)

func main() {
	var (
		methods  = flag.String("methods", "", "comma-separated serving methods (default: the four evaluated methods)")
		datasets = flag.String("datasets", "", "comma-separated datasets (default: all four)")
		gpus     = flag.String("gpus", "", "comma-separated prefill GPUs (default: A10G)")
		models   = flag.String("models", "", "comma-separated model tags (default: L)")
		replicas = flag.String("replicas", "", "comma-separated PxD replica pairs, e.g. 5x4,8x4 (default: 5x4)")
		scheds   = flag.String("schedulers", "", "comma-separated placement policies: shortest-queue, round-robin, fewest-requests, load-aware, slo")
		rps      = flag.String("rps", "", "comma-separated arrival rates (default: 0.5)")
		n        = flag.Int("n", 100, "requests per cell")
		seed     = flag.Int64("seed", 42, "sweep seed")
		maxBatch = flag.Int("batch", 256, "max decode batch per replica")
		memCap   = flag.Float64("memcap", 0, "usable decode-memory fraction (0 = default 0.95)")
		pipeline = flag.Bool("pipeline", false, "overlap transfer with prefill")
		sloTTFT  = flag.Float64("slo-ttft", 0, "time-to-first-token target in seconds (0 = untracked)")
		sloTBT   = flag.Float64("slo-tbt", 0, "time-between-tokens target in seconds (0 = untracked)")
		baseline = flag.String("baseline", "", "method speedups are measured against (default: Baseline when swept)")
		workers  = flag.Int("workers", 0, "worker pool width (0 = one per CPU)")
		format   = flag.String("format", "markdown", "output format: markdown, json, csv")
		metric   = flag.String("metric", "avgjct", "markdown pivot metric: avgjct, p99jct, peakmem, speedup")
		outPath  = flag.String("o", "", "write the report to this file instead of stdout")
		progress = flag.Bool("progress", false, "stream per-cell completions to stderr")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "hacksweep:", err)
		os.Exit(1)
	}
	// Flag-style usage errors: report the valid spellings and exit 2.
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "hacksweep:", err)
		os.Exit(2)
	}

	spec := hack.SweepSpec{
		Methods:    splitList(*methods),
		Datasets:   splitList(*datasets),
		GPUs:       splitList(*gpus),
		Models:     splitList(*models),
		Requests:   *n,
		Seed:       *seed,
		MaxBatch:   *maxBatch,
		MemCapFrac: *memCap,
		Pipeline:   *pipeline,
		SLOTTFT:    *sloTTFT,
		SLOTBT:     *sloTBT,
		Baseline:   *baseline,
	}
	for _, pair := range splitList(*replicas) {
		rc, err := parseReplicas(pair)
		if err != nil {
			usage(err)
		}
		spec.Replicas = append(spec.Replicas, rc)
	}
	for _, name := range splitList(*scheds) {
		s, err := hack.SchedulerNamed(name)
		if err != nil {
			usage(err)
		}
		spec.Schedulers = append(spec.Schedulers, s)
	}
	for _, v := range splitList(*rps) {
		r, err := strconv.ParseFloat(v, 64)
		if err != nil {
			usage(fmt.Errorf("bad -rps value %q: %w", v, err))
		}
		spec.RPS = append(spec.RPS, r)
	}
	// Surface unknown-name errors before spending any simulation time.
	if _, err := spec.Cells(); err != nil {
		usage(err)
	}

	m := hack.SweepMetric(*metric)
	validMetric := false
	for _, known := range hack.SweepMetrics() {
		validMetric = validMetric || m == known
	}
	if !validMetric {
		usage(fmt.Errorf("unknown metric %q; valid metrics: %v", *metric, hack.SweepMetrics()))
	}
	if *format != "markdown" && *format != "json" && *format != "csv" {
		usage(fmt.Errorf("unknown format %q; valid formats: markdown, json, csv", *format))
	}

	opts := []hack.SweepOption{hack.SweepWorkers(*workers)}
	if *progress {
		opts = append(opts, hack.SweepProgress(func(done, total int, r hack.CellResult) {
			status := fmt.Sprintf("jct %.2fs", r.AvgJCT)
			if r.Err != "" {
				status = "error: " + r.Err
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s on %s (%s, %.2g rps): %s\n",
				done, total, r.Method, r.Dataset, r.GPU, r.Model, r.RPS, status)
		}))
	}

	// Open the report destination before spending simulation time, so a
	// bad -o path fails fast instead of discarding a finished sweep.
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				die(err)
			}
		}()
		out = f
	}

	// Ctrl-C cancels the sweep; the pool drains before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := hack.RunSweep(ctx, spec, opts...)
	if err != nil {
		die(err)
	}
	switch *format {
	case "json":
		err = res.WriteJSON(out)
	case "csv":
		err = res.WriteCSV(out)
	default:
		err = res.WriteMarkdown(out, m)
	}
	if err != nil {
		die(err)
	}
}

// splitList parses a comma-separated flag value, treating empty as nil
// so the spec's defaults apply.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseReplicas parses a PxD pair like "5x4".
func parseReplicas(s string) (hack.ReplicaCount, error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return hack.ReplicaCount{}, fmt.Errorf("bad -replicas value %q: want PxD, e.g. 5x4", s)
	}
	p, err1 := strconv.Atoi(parts[0])
	d, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || p <= 0 || d <= 0 {
		return hack.ReplicaCount{}, fmt.Errorf("bad -replicas value %q: want positive PxD, e.g. 5x4", s)
	}
	return hack.ReplicaCount{Prefill: p, Decode: d}, nil
}
