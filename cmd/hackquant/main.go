// Command hackquant inspects the homomorphic quantizer on synthetic
// data: quantization error, compression rates including the entropy-coded
// wire format, the Eq. (4) identity, and the dequantization work HACK
// eliminates.
//
//	hackquant -rows 2048 -dh 128 -pi 64 -bits 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/hackkv/hack"
)

func main() {
	var (
		rows  = flag.Int("rows", 2048, "tokens (rows of K/V)")
		dh    = flag.Int("dh", 128, "head dimension")
		pi    = flag.Int("pi", 64, "partition size Π")
		bits  = flag.Int("bits", 2, "KV code width")
		qbits = flag.Int("qbits", 8, "Q/P code width")
		seed  = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cfgKV := hack.QuantConfig{Bits: *bits, Partition: *pi, Rounding: hack.StochasticRounding, RNG: rng}
	cfgQ := hack.QuantConfig{Bits: *qbits, Partition: *pi, Rounding: hack.StochasticRounding, RNG: rng}

	k := hack.RandNormal(rng, *rows, *dh, 1)
	v := hack.RandNormal(rng, *rows, *dh, 1)
	q := hack.RandNormal(rng, 1, *dh, 1)

	kq, err := hack.Quantize(k, hack.AlongCols, cfgKV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hackquant:", err)
		os.Exit(1)
	}
	vq, err := hack.Quantize(v, hack.AlongRows, cfgKV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hackquant:", err)
		os.Exit(1)
	}
	qq, err := hack.Quantize(q, hack.AlongCols, cfgQ)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hackquant:", err)
		os.Exit(1)
	}

	fmt.Printf("K/V: %d tokens x d_h=%d, INT%d codes, Π=%d; Q: INT%d\n",
		*rows, *dh, *bits, *pi, *qbits)

	// Reconstruction error.
	fmt.Printf("K reconstruction rel error: %.4f\n", hack.RelError(kq.Dequantize(), k))
	fmt.Printf("V reconstruction rel error: %.4f\n", hack.RelError(vq.Dequantize(), v))

	// Sizes: FP16 vs packed vs entropy-coded.
	fp16Bytes := 2 * 2 * (*rows) * (*dh)
	packed := kq.Size(false).Total() + vq.Size(false).Total()
	resident := kq.Size(true).Total() + vq.Size(true).Total()
	fmt.Printf("FP16 size      %10d bytes\n", fp16Bytes)
	fmt.Printf("packed (wire)  %10d bytes (%.1f%% compression)\n",
		packed, 100*(1-float64(packed)/float64(fp16Bytes)))
	fmt.Printf("resident (+SE) %10d bytes\n", resident)
	ratioK, err := hack.EntropyRatio(kq)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hackquant:", err)
		os.Exit(1)
	}
	fmt.Printf("entropy-coded K codes: %.3fx of packed (CacheGen-style)\n", ratioK)

	// The Eq. (4) identity: homomorphic product vs dequantize-then-multiply.
	hom, ops := hack.MatMulTransB(qq, kq, hack.DefaultMatMulOptions())
	ref := hack.ExactMatMulTransB(qq.Dequantize(), kq.Dequantize())
	fmt.Printf("homomorphic q·Kᵀ vs dequantized: max diff %.2e (algebraically identical)\n",
		hack.MaxAbsDiff(hom, ref))
	fmt.Printf("homomorphic q·Kᵀ vs exact:       rel err  %.4f\n",
		hack.RelError(hom, hack.ExactMatMulTransB(q, k)))
	fmt.Printf("int MACs %d, approx flops %d (%.2f%% of matmul)\n",
		ops.IntMACs, ops.ApproxFlops, 100*float64(ops.ApproxFlops)/float64(ops.IntMACs))

	// The per-iteration work HACK eliminates.
	dequantOps := hack.DequantKVOps(*dh, *rows)
	approxOps := hack.DecodeApproxOpsSE(*dh, *rows)
	fmt.Printf("per decode step per head: dequant %d ops vs SE approximation %d ops (%.0fx less)\n",
		dequantOps, approxOps, float64(dequantOps)/float64(approxOps))
}
