// Command hackbench regenerates the paper's tables and figures. With no
// arguments it runs every experiment; otherwise each argument selects
// one by ID (hack.Experiments enumerates them; an unknown ID exits 2
// listing the valid spellings).
//
//	hackbench            # everything, full settings
//	hackbench -quick     # everything, reduced trace/trial counts
//	hackbench fig9 fig12 # selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hackkv/hack"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced trace and trial counts")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	// Validate selections up front: an unknown experiment ID is a usage
	// error listing the valid IDs.
	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		id, err := hack.ExperimentNamed(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hackbench:", err)
			os.Exit(2)
		}
		selected[id] = true
	}

	failed := false
	for _, id := range hack.Experiments() {
		if len(selected) > 0 && !selected[id] {
			continue
		}
		tb, err := hack.RunExperiment(id, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tb.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tb); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeCSV stores one table under dir/<id>.csv.
func writeCSV(dir, id string, tb *hack.ResultTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
