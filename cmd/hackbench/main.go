// Command hackbench regenerates the paper's tables and figures. With no
// arguments it runs every experiment; otherwise each argument selects one
// (fig1a fig1b fig1c fig1d fig2 fig3 fig4 fp48 fig9 fig10 table5 fig11
// fig12 fig13 table8 fig14 table6 fidelity table7 table8acc mem74
// distortion int4 cost).
//
//	hackbench            # everything, full settings
//	hackbench -quick     # everything, reduced trace/trial counts
//	hackbench fig9 fig12 # selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hackkv/hack/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced trace and trial counts")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	s := experiments.Default()
	a := experiments.DefaultAccuracy()
	if *quick {
		s = experiments.Quick()
		a = experiments.QuickAccuracy()
	}

	type runner struct {
		id string
		fn func() (*experiments.Table, error)
	}
	perf := func(f func(experiments.Settings) (*experiments.Table, error)) func() (*experiments.Table, error) {
		return func() (*experiments.Table, error) { return f(s) }
	}
	acc := func(f func(experiments.AccuracySettings) (*experiments.Table, error)) func() (*experiments.Table, error) {
		return func() (*experiments.Table, error) { return f(a) }
	}
	runners := []runner{
		{"fig1a", perf(experiments.Fig1a)},
		{"fig1b", perf(experiments.Fig1b)},
		{"fig1c", perf(experiments.Fig1c)},
		{"fig1d", perf(experiments.Fig1d)},
		{"fig2", perf(experiments.Fig2)},
		{"fig3", perf(experiments.Fig3)},
		{"fig4", perf(experiments.Fig4)},
		{"fp48", perf(experiments.FP48)},
		{"fig9", perf(experiments.Fig9)},
		{"fig10", perf(experiments.Fig10)},
		{"table5", perf(experiments.Table5)},
		{"fig11", perf(experiments.Fig11)},
		{"fig12", perf(experiments.Fig12)},
		{"fig13", perf(experiments.Fig13)},
		{"table8", perf(experiments.Table8JCT)},
		{"fig14", perf(experiments.Fig14)},
		{"fidelity", acc(experiments.FidelityLadder)},
		{"table6", acc(experiments.Table6)},
		{"table7", acc(experiments.Table7)},
		{"table8acc", acc(experiments.Table8Accuracy)},
		{"mem74", acc(experiments.SEMemory)},
		{"distortion", acc(experiments.LogitDistortion)},
		{"int4", perf(experiments.ExtINT4)},
		{"cost", perf(experiments.CostTable)},
	}

	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		selected[strings.ToLower(arg)] = true
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.id] = true
	}
	for id := range selected {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	failed := false
	for _, r := range runners {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		tb, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			failed = true
			continue
		}
		tb.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r.id, tb); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeCSV stores one table under dir/<id>.csv.
func writeCSV(dir, id string, tb *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
