package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hackkv/hack"
)

// TestPrefixCacheFlagValidation pins the CLI guard rails: the tier is
// local-role only, and the budget must be non-negative.
func TestPrefixCacheFlagValidation(t *testing.T) {
	_, _, err := exec(t, "-role", "prefill", "-prefix-cache-bytes", "1024")
	var ue usageError
	if !errors.As(err, &ue) || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("prefill role with prefix cache: %v", err)
	}
	_, _, err = exec(t, "-prefix-cache-bytes", "-1")
	if !errors.As(err, &ue) {
		t.Fatalf("negative budget: %v", err)
	}
}

// TestPrefixCacheThroughDaemon drives the daemon's HTTP surface with
// the shared-prefix tier enabled: the same prompt generated twice
// streams identical tokens, and /metrics exposes the hit.
func TestPrefixCacheThroughDaemon(t *testing.T) {
	eng, err := hack.New(hack.WithServeConfig(hack.ServeConfig{
		PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4,
		MaxNewTokens: 4, PrefixCacheBytes: 1 << 20,
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Longer than one Π=64 partition, so a page is insertable.
	prompt := make([]int, 70)
	for i := range prompt {
		prompt[i] = (5*i + 1) % srv.Model().Vocab
	}
	body, err := json.Marshal(map[string]any{"prompt": prompt, "seed": 3})
	if err != nil {
		t.Fatal(err)
	}
	generate := func() string {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate: %d: %s", resp.StatusCode, out.String())
		}
		return out.String()
	}
	cold := generate()
	warm := generate()
	if cold != warm {
		t.Fatalf("warm stream diverged from cold:\ncold: %s\nwarm: %s", cold, warm)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap hack.ServeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.PrefixCache == nil {
		t.Fatal("prefix tier enabled but /metrics carries no prefix_cache stats")
	}
	if snap.PrefixCache.Hits != 1 || snap.PrefixCache.TokensReused != 64 {
		t.Fatalf("prefix stats %+v, want 1 hit reusing 64 tokens", snap.PrefixCache)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if _, err := prom.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(prom.String(), "prefix_hits_total") {
		t.Fatal("prometheus exposition lacks prefix_hits_total")
	}
}
