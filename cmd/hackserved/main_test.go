package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/hackkv/hack"
)

// exec runs the daemon CLI body in-process and returns its stdout,
// stderr and error — no os/exec involved.
func exec(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// Unknown registry names are usage errors (exit 2 in main) and list the
// valid spellings, per the CLI convention.
func TestUnknownNamesAreUsageErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string // a valid name the error must list
	}{
		{[]string{"-scheduler", "nope"}, "shortest-queue"},
		{[]string{"-scheduler", "nope"}, "round-robin"},
		{[]string{"-scheduler", "nope"}, "fewest-requests"},
		{[]string{"-scheduler", "nope"}, "load-aware"},
		{[]string{"-scheduler", "nope"}, "slo"},
		{[]string{"-method", "nope"}, "HACK"},
		{[]string{"-method", "nope"}, "Baseline"},
	}
	for _, c := range cases {
		_, _, err := exec(t, c.args...)
		if err == nil {
			t.Fatalf("args %v: expected an error", c.args)
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Fatalf("args %v: error %v is not a usage error", c.args, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("args %v: error %q does not list %q", c.args, err, c.want)
		}
	}
}

func TestBadFlagValuesAreUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-batch", "not-a-number"},
		{"-batch", "-1"},
		{"-queue", "-2"},
		{"-max-new", "-1"},
		{"-prefill-workers", "-1"},
		{"-decode-par", "-1"},
		{"-drain-timeout", "-5s"},
		{"-no-such-flag"},
	} {
		_, _, err := exec(t, args...)
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("args %v: err = %v, want usage error", args, err)
		}
	}
}

// -h prints usage and exits 0 (run returns nil).
func TestHelpExitsZero(t *testing.T) {
	_, stderr, err := exec(t, "-h")
	if err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(stderr, "-scheduler") || !strings.Contains(stderr, "-addr") {
		t.Errorf("-h usage output missing flags:\n%s", stderr)
	}
}

// A bind failure on a valid configuration is a runtime error (exit 1),
// not a usage error.
func TestBindFailureIsRuntimeError(t *testing.T) {
	_, _, err := exec(t, "-addr", "256.256.256.256:0")
	if err == nil {
		t.Fatal("expected a bind error")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("bind error %v misclassified as usage error", err)
	}
}

// testMux builds a live handler over a deterministic single-worker
// server.
func testMux(t *testing.T) (http.Handler, *hack.Server) {
	t.Helper()
	eng, err := hack.New(hack.WithServeConfig(hack.ServeConfig{
		PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv.Handler(), srv
}

func TestGenerateStreamsNDJSON(t *testing.T) {
	mux, _ := testMux(t)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	body := `{"prompt":[1,2,3,4],"max_new_tokens":5,"seed":7}`
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var toks []int
	sawTrailer := false
	for sc.Scan() {
		var line struct {
			Index *int `json:"index"`
			ID    int  `json:"id"`
			Done  bool `json:"done"`
			N     int  `json:"tokens"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if line.Done {
			sawTrailer = true
			if line.N != len(toks) {
				t.Errorf("trailer tokens %d, want %d", line.N, len(toks))
			}
			break
		}
		if line.Index == nil || *line.Index != len(toks) {
			t.Fatalf("line %q: bad index, want %d", sc.Text(), len(toks))
		}
		toks = append(toks, line.ID)
	}
	if !sawTrailer || len(toks) != 5 {
		t.Errorf("stream gave %d tokens, trailer %v", len(toks), sawTrailer)
	}
}

func TestGenerateRejectsBadRequests(t *testing.T) {
	mux, _ := testMux(t)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/v1/generate"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET generate: %d, want 405", resp.StatusCode)
	}
	for _, body := range []string{"{not json", `{"prompt":[]}`, `{"prompt":[999999]}`} {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	mux, srv := testMux(t)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap hack.ServeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()

	// Draining flips healthz to 503 and generate to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"prompt":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining generate: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPConcurrentSoak streams 64 concurrent generations through the
// daemon's HTTP handler and requires zero dropped tokens: every
// response must carry its full token budget with contiguous indices
// and a clean trailer. Run under -race in CI.
func TestHTTPConcurrentSoak(t *testing.T) {
	eng, err := hack.New(hack.WithServeConfig(hack.ServeConfig{
		PrefillWorkers: 4, MaxBatch: 16, QueueCap: 64, MaxNewTokens: 4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const nReqs, maxNew = 64, 4
	errs := make([]error, nReqs)
	var wg sync.WaitGroup
	for i := 0; i < nReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"prompt":[%d,%d,%d],"max_new_tokens":%d,"seed":%d}`,
				1+i%50, 2+i%50, 3+i%50, maxNew, i)
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			sc := bufio.NewScanner(resp.Body)
			toks := 0
			for sc.Scan() {
				var line struct {
					Index *int   `json:"index"`
					Done  bool   `json:"done"`
					N     int    `json:"tokens"`
					Error string `json:"error"`
				}
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					errs[i] = fmt.Errorf("bad line %q: %v", sc.Text(), err)
					return
				}
				if line.Done {
					if line.Error != "" || line.N != maxNew || toks != maxNew {
						errs[i] = fmt.Errorf("trailer %+v after %d tokens", line, toks)
					}
					return
				}
				if line.Index == nil || *line.Index != toks {
					errs[i] = fmt.Errorf("line %q: want index %d (dropped token)", sc.Text(), toks)
					return
				}
				toks++
			}
			errs[i] = fmt.Errorf("stream ended without trailer after %d tokens (err %v)", toks, sc.Err())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	snap := srv.Metrics()
	if snap.Completed != nReqs || snap.TokensStreamed != nReqs*maxNew {
		t.Errorf("snapshot completed %d tokens %d, want %d/%d",
			snap.Completed, snap.TokensStreamed, nReqs, nReqs*maxNew)
	}
}

// syncBuffer is a goroutine-safe writer for capturing the daemon's
// stdout while it runs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonServesAndDrainsOnSIGTERM boots the real daemon on an
// ephemeral port, streams a generation over HTTP, then delivers a real
// SIGTERM and requires a clean (exit-0) graceful drain.
func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-prefill-workers", "1", "-max-new", "4"},
			&stdout, &stderr)
	}()

	// Wait for the announced address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on http://") {
			rest := out[strings.Index(out, "http://"):]
			base = strings.Fields(rest)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/generate", "application/json",
		strings.NewReader(`{"prompt":[5,6,7],"max_new_tokens":4}`))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	resp.Body.Close()
	if lines != 5 { // 4 tokens + trailer
		t.Errorf("streamed %d lines, want 5", lines)
	}

	// Real signal: the registered handler must catch it and drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	out := stdout.String()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Errorf("drain messages missing from stdout:\n%s", out)
	}
}

// Unknown roles are usage errors listing the valid names.
func TestUnknownRoleIsUsageError(t *testing.T) {
	_, _, err := exec(t, "-role", "nope")
	var ue usageError
	if err == nil || !errors.As(err, &ue) {
		t.Fatalf("err = %v, want usage error", err)
	}
	if !strings.Contains(err.Error(), "router") {
		t.Errorf("error %q does not list the valid roles", err)
	}
}

// TestMetricsPrometheusNegotiation covers the /metrics content
// negotiation on the local role: JSON by default, Prometheus text with
// ?format=prometheus or an Accept header preferring text/plain.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	mux, _ := testMux(t)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	if !strings.Contains(string(body), `"submitted"`) {
		t.Fatalf("JSON metrics body: %q", body)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE hackserved_submitted_total counter",
		"hackserved_ttft_seconds{quantile=\"0.99\"}",
		"# TYPE hackserved_draining gauge",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prometheus body missing %q:\n%s", want, body)
		}
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "hackserved_submitted_total") {
		t.Errorf("Accept: text/plain did not negotiate prometheus:\n%s", body)
	}
}

// bootRole starts one daemon role in a goroutine and returns the
// addresses it announced plus its exit channel.
func bootRole(t *testing.T, args ...string) (wire, httpBase string, out *syncBuffer, done chan error) {
	t.Helper()
	out = &syncBuffer{}
	done = make(chan error, 1)
	go func() {
		var stderr syncBuffer
		done <- run(args, out, &stderr)
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon %v never announced itself; stdout=%q", args, out.String())
		}
		s := out.String()
		if i := strings.Index(s, "wire="); i >= 0 {
			wire = strings.Fields(s[i+len("wire="):])[0]
		}
		if i := strings.Index(s, "http://"); i >= 0 {
			httpBase = strings.Fields(s[i:])[0]
		}
		if httpBase != "" && (wire != "" || !strings.Contains(strings.Join(args, " "), "-wire")) {
			return wire, httpBase, out, done
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDisaggDaemonThreeRoles boots the whole disaggregated deployment
// through the real CLI — one router, one prefill node, two decode
// replicas, four in-process daemons — streams a generation through the
// router's HTTP API, checks the deployment metrics, and drains
// everything with one SIGTERM.
func TestDisaggDaemonThreeRoles(t *testing.T) {
	const maxNew = 5
	common := []string{"-addr", "127.0.0.1:0", "-wire", "127.0.0.1:0",
		"-prefill-workers", "1", "-decode-par", "1", "-max-new", fmt.Sprint(maxNew)}

	preWire, preHTTP, _, preDone := bootRole(t, append([]string{"-role", "prefill"}, common...)...)
	dec1Wire, _, _, dec1Done := bootRole(t, append([]string{"-role", "decode"}, common...)...)
	dec2Wire, _, _, dec2Done := bootRole(t, append([]string{"-role", "decode"}, common...)...)
	_, routerHTTP, routerOut, routerDone := bootRole(t,
		"-role", "router", "-addr", "127.0.0.1:0",
		"-peer-prefills", preWire,
		"-peer-decodes", dec1Wire+","+dec2Wire,
		"-max-new", fmt.Sprint(maxNew))

	// One generation through the whole pipeline.
	resp, err := http.Post(routerHTTP+"/v1/generate", "application/json",
		strings.NewReader(`{"prompt":[5,6,7,8],"max_new_tokens":5,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var tokens int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Index *int   `json:"index"`
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if line.Error != "" {
				t.Fatalf("stream trailer error: %s", line.Error)
			}
			break
		}
		if line.Index == nil || *line.Index != tokens {
			t.Fatalf("line %q: want index %d", sc.Text(), tokens)
		}
		tokens++
	}
	resp.Body.Close()
	if tokens != maxNew {
		t.Fatalf("streamed %d tokens, want %d", tokens, maxNew)
	}

	// The deployment view shows the KV bytes that crossed each link.
	resp, err = http.Get(routerHTTP + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var rep hack.DisaggReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Completed != 1 || len(rep.LinkKVBytes) < 2 || len(rep.Replicas) != 2 {
		t.Fatalf("router report: %+v", rep)
	}
	resp, err = http.Get(routerHTTP + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "hackserved_router_completed_total 1") {
		t.Fatalf("router prometheus metrics: %s", b)
	}

	// The prefill node's own endpoint counts its work.
	resp, err = http.Get(preHTTP + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "hackserved_prefill_prefills_total 1") {
		t.Fatalf("prefill prometheus metrics: %s", b)
	}

	// One SIGTERM reaches every in-process daemon; all must drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{
		"prefill": preDone, "decode1": dec1Done, "decode2": dec2Done, "router": routerDone,
	} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exit: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
	if out := routerOut.String(); !strings.Contains(out, "router drained") {
		t.Errorf("router drain message missing:\n%s", out)
	}
}
