// Command hackserved is the live serving daemon: an HTTP front end over
// the continuous-batching runtime, generating real tokens through the
// homomorphic HACK kernels (or any registered serving method).
//
//	hackserved -addr 127.0.0.1:8080 -method HACK -scheduler load-aware
//
// Endpoints (the shared handler stack from internal/api, identical on
// the local and router roles):
//
//	POST /v1/generate          {"prompt":[1,2,3],"max_new_tokens":8,"seed":7}
//	                           → streamed NDJSON, one {"index":i,"id":t} line
//	                           per token, then a {"done":true} trailer
//	POST /v1/completions       OpenAI-compatible text completion: text
//	                           prompts via a deterministic tokenizer shim,
//	                           "stream":true for SSE (data: chunks, usage
//	                           in the final chunk, data: [DONE])
//	POST /v1/chat/completions  OpenAI-compatible chat completion, same
//	                           streaming contract
//	GET  /v1/models            the served model plus the model/method
//	                           registries, OpenAI list format
//	GET  /metrics              live serving snapshot: JSON by default, or
//	                           Prometheus text format with ?format=prometheus
//	                           (or an Accept header preferring text/plain)
//	GET  /healthz              {"status":"ok"}, or 503 {"status":"draining"}
//
// OpenAI-format requests produce token streams byte-identical to the
// equivalent /v1/generate call per (prompt, seed); errors on every
// route share one OpenAI-style {"error":{"type","message","code"}}
// envelope (429 queue-full, 503 draining, 400 validation).
//
// The default role serves prefill and decode in one process. Adding
// -prefix-cache-bytes N there enables the shared-prefix KV cache:
// quantized KV pages from completed prefills are kept under an N-byte
// budget, and a request sharing a cached prompt prefix skips prefill
// over the matched span (hit/miss/bytes-saved counters appear under
// "prefix_cache" in /metrics). Adding -spec-k K (K >= 2) enables
// speculative decoding: a cheap draft pass (-spec-draft picks its
// compression class) proposes up to K-1 tokens per step and the serving
// method's kernels verify the window in one batched attention call,
// with acceptance counters under "speculation" in /metrics; token
// streams stay byte-identical to the non-speculative path per
// (prompt, seed). With
// -role the daemon becomes one node of a true disaggregated deployment
// connected over the KV wire protocol:
//
//	hackserved -role prefill -wire 127.0.0.1:9101 -addr 127.0.0.1:8081
//	hackserved -role decode  -wire 127.0.0.1:9201 -addr 127.0.0.1:8082
//	hackserved -role decode  -wire 127.0.0.1:9202 -addr 127.0.0.1:8083
//	hackserved -role router  -peer-prefills 127.0.0.1:9101 \
//	    -peer-decodes 127.0.0.1:9201,127.0.0.1:9202 -addr 127.0.0.1:8080
//
// Prefill and decode nodes speak the wire protocol on -wire and serve
// /healthz + /metrics on -addr; the router serves the same HTTP API as
// the local role on -addr (NDJSON /v1/generate proxied over the wire,
// /metrics reporting the deployment view) and places each request on
// the least-loaded healthy decode replica. The router retries transient
// wire faults (connection loss, corrupt frames, missed frame deadlines)
// under a jittered-backoff retry budget and trips a per-replica circuit
// breaker on repeated failures; breaker state and trip counters appear
// in /metrics.
//
// Adding -chaos-script NAME to the router replays a named fault script
// against the router's own links — a self-contained chaos drill for
// staging deployments. Scripts inject latency, bandwidth caps, frame
// corruption, and partitions (a scripted "kill" is modeled as
// partitioning that replica's link, since the router cannot stop a
// remote process), then heal; -chaos-seed makes the injected faults
// reproducible. Streams must still complete exactly — the injector's
// chaos_* counters surface on the router's /metrics alongside the
// breaker series:
//
//	hackserved -role router -peer-prefills 127.0.0.1:9101 \
//	    -peer-decodes 127.0.0.1:9201,127.0.0.1:9202 \
//	    -chaos-script degrade-kv-link -addr 127.0.0.1:8080
//
// SIGINT/SIGTERM begin a graceful drain: new work is rejected (429/503
// responses), in-flight streams run to completion (bounded by
// -drain-timeout), then the process exits 0. Run with -h for the flag
// list; unknown -method/-scheduler/-role values exit with status 2 and
// list the valid names.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hackkv/hack"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	var ue usageError
	if errors.As(err, &ue) {
		if !ue.quiet {
			fmt.Fprintln(os.Stderr, "hackserved:", err)
		}
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "hackserved:", err)
	os.Exit(1)
}

// usageError marks flag-style errors (unknown names, bad values) that
// exit with status 2 instead of 1, per the CLI convention. quiet marks
// errors the flag package already reported to stderr, so main does not
// print them twice.
type usageError struct {
	err   error
	quiet bool
}

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// run executes the daemon for the given argument list: it binds the
// listener, announces the address on stdout, serves until SIGINT or
// SIGTERM, drains, and returns. It is the whole daemon minus process
// exit, so tests drive it without os/exec.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hackserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		method    = fs.String("method", "HACK", "serving method (kernel family)")
		scheduler = fs.String("scheduler", "shortest-queue",
			"admission routing policy: "+strings.Join(hack.Schedulers(), ", "))
		workers   = fs.Int("prefill-workers", 2, "concurrent prefill workers (1 = deterministic single-worker mode)")
		batch     = fs.Int("batch", 8, "max continuous decode batch")
		queueCap  = fs.Int("queue", 64, "admission queue bound per prefill worker (full queues load-shed)")
		maxNew    = fs.Int("max-new", 32, "per-request generated-token cap")
		decodePar = fs.Int("decode-par", 0, "decode-step goroutine fan-out (0 = size to batch, 1 = serial)")
		seed      = fs.Int64("seed", 1, "model weight seed")
		prefixB   = fs.Int64("prefix-cache-bytes", 0, "shared-prefix KV cache budget in bytes (0 disables; local role only)")
		specK     = fs.Int("spec-k", 0, "speculative decoding window size (0/1 disable; local role only)")
		specDraft = fs.String("spec-draft", "", "speculative draft compression class (default "+hack.DefaultDraftClass+"): "+strings.Join(hack.DraftClasses(), ", "))
		drainFor  = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM")
		role      = fs.String("role", "local", "serving role: "+strings.Join(hack.Roles(), ", "))
		wire      = fs.String("wire", "127.0.0.1:0", "KV wire listen address (prefill/decode roles)")
		peerPre   = fs.String("peer-prefills", "", "comma-separated prefill wire addresses (router role)")
		peerDec   = fs.String("peer-decodes", "", "comma-separated decode wire addresses (router role)")
		chaosSc   = fs.String("chaos-script", "",
			"replay a named fault-injection script against the router's links (router role, dev/chaos drills): "+
				strings.Join(hack.ChaosScripts(), ", "))
		chaosSeed = fs.Int64("chaos-seed", 1, "deterministic seed for -chaos-script fault injection")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return usageError{err: err, quiet: true}
	}

	// Flag-style usage errors: report the valid names and exit 2.
	if _, err := hack.MethodNamed(*method); err != nil {
		return usageError{err: err}
	}
	sched, err := hack.SchedulerNamed(*scheduler)
	if err != nil {
		return usageError{err: err}
	}
	if *workers < 0 || *batch < 0 || *queueCap < 0 || *maxNew < 0 || *decodePar < 0 || *prefixB < 0 || *specK < 0 {
		return usageError{err: fmt.Errorf("sizing flags must be >= 0")}
	}
	if *drainFor <= 0 {
		return usageError{err: fmt.Errorf("drain timeout %v must be positive", *drainFor)}
	}
	r, err := hack.ParseRole(*role)
	if err != nil {
		return usageError{err: err}
	}
	if *prefixB > 0 && r != hack.RoleLocal {
		return usageError{err: fmt.Errorf("-prefix-cache-bytes requires the local role (prefix pages do not ship over the disaggregated KV wire)")}
	}
	if (*specK > 1 || *specDraft != "") && r != hack.RoleLocal {
		return usageError{err: fmt.Errorf("-spec-k/-spec-draft require the local role (disaggregated decode replicas resume remotely-prefilled sessions, which cannot host a draft)")}
	}
	if *specDraft != "" {
		valid := false
		for _, n := range hack.DraftClasses() {
			valid = valid || n == *specDraft
		}
		if !valid {
			return usageError{err: fmt.Errorf("unknown draft class %q (valid: %s)",
				*specDraft, strings.Join(hack.DraftClasses(), ", "))}
		}
	}
	if *chaosSc != "" {
		if r != hack.RoleRouter {
			return usageError{err: fmt.Errorf("-chaos-script requires the router role (faults are injected on the router's links)")}
		}
		valid := false
		for _, n := range hack.ChaosScripts() {
			valid = valid || n == *chaosSc
		}
		if !valid {
			return usageError{err: fmt.Errorf("unknown chaos script %q (valid: %s)",
				*chaosSc, strings.Join(hack.ChaosScripts(), ", "))}
		}
	}

	opts := []hack.Option{
		hack.WithMethod(*method),
		hack.WithScheduler(sched),
		hack.WithServeConfig(hack.ServeConfig{
			ModelSeed:         *seed,
			PrefillWorkers:    *workers,
			MaxBatch:          *batch,
			QueueCap:          *queueCap,
			MaxNewTokens:      *maxNew,
			DecodeParallelism: *decodePar,
			PrefixCacheBytes:  *prefixB,
			SpecK:             *specK,
			SpecDraft:         *specDraft,
		}),
	}
	if r != hack.RoleLocal {
		opts = append(opts,
			hack.WithRole(r),
			hack.WithPeers(splitPeers(*peerPre), splitPeers(*peerDec)),
		)
		return runRole(r, *addr, *wire, *drainFor, *chaosSc, *chaosSeed, opts, stdout)
	}

	eng, err := hack.New(opts...)
	if err != nil {
		return err
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// Make sure the runtime's goroutines don't outlive the failed
		// daemon.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		return err
	}
	fmt.Fprintf(stdout, "hackserved: listening on http://%s (%s, %s, %d prefill workers, batch %d)\n",
		ln.Addr(), *method, sched, *workers, *batch)

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failure before any signal
	case <-ctx.Done():
		stop()
		fmt.Fprintln(stdout, "hackserved: signal received, draining...")
		dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		drainErr := srv.Shutdown(dctx)
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer hcancel()
		_ = httpSrv.Shutdown(hctx)
		snap := srv.Metrics()
		fmt.Fprintf(stdout, "hackserved: drained (completed %d, canceled %d, tokens %d)\n",
			snap.Completed, snap.Canceled, snap.TokensStreamed)
		if drainErr != nil {
			return fmt.Errorf("drain: %w", drainErr)
		}
		return nil
	}
}

// splitPeers parses a comma-separated address list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runRole executes a disaggregated role until SIGINT/SIGTERM. Prefill
// and decode nodes speak the wire protocol on wireAddr and serve their
// health/metrics HTTP endpoint on httpAddr; the router serves the
// daemon's HTTP API on httpAddr and initiates wire connections to its
// peers.
func runRole(role hack.Role, httpAddr, wireAddr string, drainFor time.Duration, chaosScript string, chaosSeed int64, opts []hack.Option, stdout io.Writer) error {
	dc := hack.DisaggConfig{WireAddr: wireAddr, ChaosScript: chaosScript, ChaosSeed: chaosSeed}
	if role != hack.RoleRouter {
		// The node serves its own /healthz and /metrics on the daemon's
		// HTTP address.
		dc.HTTPAddr = httpAddr
	}
	eng, err := hack.New(append(opts, hack.WithDisaggConfig(dc))...)
	if err != nil {
		return err
	}
	ds, err := eng.ListenDisagg(context.Background())
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if role != hack.RoleRouter {
		fmt.Fprintf(stdout, "hackserved: %s listening wire=%s http=http://%s\n",
			role, ds.WireAddr(), ds.HTTPAddr())
		<-ctx.Done()
		stop()
		fmt.Fprintf(stdout, "hackserved: signal received, draining...\n")
		err := ds.Close()
		fmt.Fprintf(stdout, "hackserved: %s drained\n", role)
		return err
	}

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		ds.Close()
		return err
	}
	fmt.Fprintf(stdout, "hackserved: router listening on http://%s (%d decode replicas)\n",
		ln.Addr(), len(ds.Report().Replicas))
	if chaosScript != "" {
		fmt.Fprintf(stdout, "hackserved: chaos script %q replaying against the router's links (seed %d)\n",
			chaosScript, chaosSeed)
	}
	httpSrv := &http.Server{Handler: ds.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		ds.Close()
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(stdout, "hackserved: signal received, draining...")
		hctx, hcancel := context.WithTimeout(context.Background(), drainFor)
		defer hcancel()
		_ = httpSrv.Shutdown(hctx)
		err := ds.Close()
		rep := ds.Report()
		fmt.Fprintf(stdout, "hackserved: router drained (completed %d, failed %d, retries %d)\n",
			rep.Completed, rep.Failed, rep.Retries)
		return err
	}
}
