package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/hackkv/hack"
	"github.com/hackkv/hack/internal/api"
	"github.com/hackkv/hack/internal/model"
)

var updateGoldens = flag.Bool("update", false, "rewrite golden files")

// generateIDs streams one /v1/generate request and returns the emitted
// token ids — the reference stream for the byte-identity checks.
func generateIDs(t *testing.T, base string, prompt []int, maxNew int, seed int64) []int {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"prompt": prompt, "max_new_tokens": maxNew, "seed": seed,
	})
	resp, err := http.Post(base+"/v1/generate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("generate: %d: %s", resp.StatusCode, b)
	}
	var ids []int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			ID    int    `json:"id"`
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if line.Error != "" {
				t.Fatalf("generate trailer error: %s", line.Error)
			}
			return ids
		}
		ids = append(ids, line.ID)
	}
	t.Fatalf("generate stream ended without trailer (%v)", sc.Err())
	return nil
}

// sseCollect reads one SSE response to [DONE], concatenating the text
// deltas (completions "text" or chat delta "content") and returning the
// final usage block.
func sseCollect(t *testing.T, body io.Reader) (text string, completionTokens int) {
	t.Helper()
	sawDone := false
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		payload := strings.TrimPrefix(line, "data: ")
		if payload == "[DONE]" {
			sawDone = true
			break
		}
		var chunk struct {
			Choices []struct {
				Text  string `json:"text"`
				Delta struct {
					Content *string `json:"content"`
				} `json:"delta"`
			} `json:"choices"`
			Usage *struct {
				CompletionTokens int `json:"completion_tokens"`
			} `json:"usage"`
			Error *api.Error `json:"error"`
		}
		if err := json.Unmarshal([]byte(payload), &chunk); err != nil {
			t.Fatalf("bad SSE payload %q: %v", payload, err)
		}
		if chunk.Error != nil {
			t.Fatalf("in-band stream error: %+v", chunk.Error)
		}
		for _, c := range chunk.Choices {
			text += c.Text
			if c.Delta.Content != nil {
				text += *c.Delta.Content
			}
		}
		if chunk.Usage != nil {
			completionTokens = chunk.Usage.CompletionTokens
		}
	}
	if !sawDone {
		t.Fatalf("SSE stream ended without [DONE] (%v)", sc.Err())
	}
	return text, completionTokens
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOpenAIByteIdentityLocal pins the tentpole property on the local
// role: a /v1/completions request (streaming and not) and a chat
// request produce token streams byte-identical to the equivalent
// /v1/generate call for the same (prompt, seed).
func TestOpenAIByteIdentityLocal(t *testing.T) {
	mux, srv := testMux(t)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	tok := api.NewTokenizer(srv.Model().Vocab)

	const text = "the quick brown fox audits kv caches"
	const maxNew, seed = 6, 11
	want := generateIDs(t, ts.URL, tok.Encode(text), maxNew, seed)
	if len(want) != maxNew {
		t.Fatalf("reference stream has %d tokens, want %d", len(want), maxNew)
	}

	// Non-streaming completions.
	body := fmt.Sprintf(`{"prompt":%q,"max_tokens":%d,"seed":%d}`, text, maxNew, seed)
	resp, err := http.Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Choices []struct {
			Text string `json:"text"`
		} `json:"choices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := tok.Encode(out.Choices[0].Text); !sameIDs(got, want) {
		t.Fatalf("completions ids %v != generate ids %v", got, want)
	}

	// Streaming completions.
	body = fmt.Sprintf(`{"prompt":%q,"max_tokens":%d,"seed":%d,"stream":true}`, text, maxNew, seed)
	resp, err = http.Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	streamed, completionTokens := sseCollect(t, resp.Body)
	resp.Body.Close()
	if got := tok.Encode(streamed); !sameIDs(got, want) {
		t.Fatalf("SSE ids %v != generate ids %v", got, want)
	}
	if completionTokens != maxNew {
		t.Errorf("final chunk usage completion_tokens %d, want %d", completionTokens, maxNew)
	}

	// Streaming chat: the flattened transcript is the prompt.
	messages := []api.ChatMessage{
		{Role: "system", Content: "you are terse"},
		{Role: "user", Content: text},
	}
	chatWant := generateIDs(t, ts.URL, tok.Encode(api.ChatPromptText(messages)), maxNew, seed)
	msgs, _ := json.Marshal(messages)
	body = fmt.Sprintf(`{"messages":%s,"max_tokens":%d,"seed":%d,"stream":true}`, msgs, maxNew, seed)
	resp, err = http.Post(ts.URL+"/v1/chat/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	streamed, _ = sseCollect(t, resp.Body)
	resp.Body.Close()
	if got := tok.Encode(streamed); !sameIDs(got, chatWant) {
		t.Fatalf("chat SSE ids %v != generate ids %v", got, chatWant)
	}
}

// TestOpenAIByteIdentityRouter runs the same identity check through the
// real 4-daemon CLI deployment: router + prefill + two decode replicas,
// with the OpenAI stream served by the router and compared against the
// router's own /v1/generate.
func TestOpenAIByteIdentityRouter(t *testing.T) {
	const maxNew = 4
	common := []string{"-addr", "127.0.0.1:0", "-wire", "127.0.0.1:0",
		"-prefill-workers", "1", "-decode-par", "1", "-max-new", fmt.Sprint(maxNew)}

	preWire, _, _, preDone := bootRole(t, append([]string{"-role", "prefill"}, common...)...)
	dec1Wire, _, _, dec1Done := bootRole(t, append([]string{"-role", "decode"}, common...)...)
	dec2Wire, _, _, dec2Done := bootRole(t, append([]string{"-role", "decode"}, common...)...)
	_, routerHTTP, _, routerDone := bootRole(t,
		"-role", "router", "-addr", "127.0.0.1:0",
		"-peer-prefills", preWire,
		"-peer-decodes", dec1Wire+","+dec2Wire,
		"-max-new", fmt.Sprint(maxNew))

	// The router serves the toy spec; its tokenizer id space follows.
	tok := api.NewTokenizer(model.Toy().Vocab)
	const text = "route this prompt across the kv wire"
	const seed = 3
	want := generateIDs(t, routerHTTP, tok.Encode(text), maxNew, seed)
	if len(want) != maxNew {
		t.Fatalf("reference stream has %d tokens, want %d", len(want), maxNew)
	}

	// Streaming completions through the fleet.
	body := fmt.Sprintf(`{"prompt":%q,"max_tokens":%d,"seed":%d,"stream":true}`, text, maxNew, seed)
	resp, err := http.Post(routerHTTP+"/v1/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	streamed, completionTokens := sseCollect(t, resp.Body)
	resp.Body.Close()
	if got := tok.Encode(streamed); !sameIDs(got, want) {
		t.Fatalf("routed SSE ids %v != routed generate ids %v", got, want)
	}
	if completionTokens != maxNew {
		t.Errorf("usage completion_tokens %d, want %d", completionTokens, maxNew)
	}

	// Non-streaming chat through the fleet.
	messages := []api.ChatMessage{{Role: "user", Content: text}}
	chatWant := generateIDs(t, routerHTTP, tok.Encode(api.ChatPromptText(messages)), maxNew, seed)
	msgs, _ := json.Marshal(messages)
	body = fmt.Sprintf(`{"messages":%s,"max_tokens":%d,"seed":%d}`, msgs, maxNew, seed)
	resp, err = http.Post(routerHTTP+"/v1/chat/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var chat struct {
		Choices []struct {
			Message struct {
				Content string `json:"content"`
			} `json:"message"`
		} `json:"choices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := tok.Encode(chat.Choices[0].Message.Content); !sameIDs(got, chatWant) {
		t.Fatalf("routed chat ids %v != routed generate ids %v", got, chatWant)
	}

	// /v1/models is mounted on the router too.
	resp, err = http.Get(routerHTTP + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"Toy"`) || !strings.Contains(string(b), `"HACK"`) {
		t.Fatalf("router /v1/models: %s", b)
	}

	// Drain the whole fleet.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{
		"prefill": preDone, "decode1": dec1Done, "decode2": dec2Done, "router": routerDone,
	} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exit: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
}

// TestOpenAISSEClientCancel kills the client mid-SSE-stream and
// requires the engine to see the cancellation (the Canceled metric
// ticks) with no goroutine left behind. Runs under -race in CI.
func TestOpenAISSEClientCancel(t *testing.T) {
	eng, err := hack.New(hack.WithServeConfig(hack.ServeConfig{
		PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 4096,
	}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := eng.Listen(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	baseline := runtime.NumGoroutine()

	// A 4096-token budget keeps the engine decoding long after the
	// client walks away.
	resp, err := http.Post(ts.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt":"a very long story","max_tokens":4096,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first SSE frame: %v", err)
	}
	resp.Body.Close() // hang up mid-stream

	deadline := time.Now().Add(15 * time.Second)
	for srv.Metrics().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("engine never counted the cancellation: %+v", srv.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every goroutine the request spawned must wind down.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak after cancel: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// promTypeLines scrapes /metrics in Prometheus form and returns only
// the "# TYPE" schema lines — the stable metric inventory, independent
// of counts.
func promTypeLines(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "# TYPE ") {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return strings.Join(lines, "\n") + "\n"
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("golden %s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestMetricsPrometheusGoldens pins the Prometheus metric inventory
// ("# TYPE" lines) exposed by the shared /metrics route on both roles —
// the negotiation and the schema can no longer drift between them.
func TestMetricsPrometheusGoldens(t *testing.T) {
	ctx := context.Background()

	// Local role, after one generation so every family is live.
	mux, srv := testMux(t)
	local := httptest.NewServer(mux)
	defer local.Close()
	tok := api.NewTokenizer(srv.Model().Vocab)
	generateIDs(t, local.URL, tok.Encode("warm up"), 2, 1)
	checkGolden(t, "prom_local_types.golden", promTypeLines(t, local.URL))

	// Router role over an in-process fleet via the public facade.
	newEng := func(role hack.Role, opts ...hack.Option) *hack.Engine {
		eng, err := hack.New(append([]hack.Option{
			hack.WithMethod("HACK"), hack.WithRole(role),
			hack.WithServeConfig(hack.ServeConfig{
				PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 8,
			}),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	prefill, err := newEng(hack.RolePrefill).ListenDisagg(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer prefill.Close()
	decode, err := newEng(hack.RoleDecode).ListenDisagg(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer decode.Close()
	router, err := newEng(hack.RoleRouter,
		hack.WithPeers([]string{prefill.WireAddr()}, []string{decode.WireAddr()}),
		hack.WithDisaggConfig(hack.DisaggConfig{HealthInterval: time.Hour}),
	).ListenDisagg(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	routerTS := httptest.NewServer(router.Handler())
	defer routerTS.Close()
	generateIDs(t, routerTS.URL, tok.Encode("warm up"), 2, 1)
	checkGolden(t, "prom_router_types.golden", promTypeLines(t, routerTS.URL))
}
