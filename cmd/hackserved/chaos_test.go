package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestChaosScriptFlagValidation(t *testing.T) {
	// Unknown script names are usage errors and list the registry.
	_, _, err := exec(t, "-role", "router", "-peer-prefills", "x", "-peer-decodes", "y",
		"-chaos-script", "nope")
	var ue usageError
	if err == nil || !errors.As(err, &ue) {
		t.Fatalf("unknown script: err = %v, want usage error", err)
	}
	for _, name := range []string{"kill-decode", "degrade-kv-link", "partition-heal", "corrupt-frame"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list script %q", err, name)
		}
	}

	// The flag only makes sense where the faults are injected: the router.
	for _, role := range []string{"local", "prefill", "decode"} {
		args := []string{"-chaos-script", "kill-decode"}
		if role != "local" {
			args = append(args, "-role", role, "-wire", "127.0.0.1:0")
		}
		_, _, err := exec(t, args...)
		if err == nil || !errors.As(err, &ue) {
			t.Fatalf("role %s: err = %v, want usage error", role, err)
		}
		if !strings.Contains(err.Error(), "router") {
			t.Errorf("role %s: error %q does not point at the router role", role, err)
		}
	}
}

// streamGenerate posts one generation to the router's NDJSON API and
// returns the token stream, failing on any trailer error or index gap.
func streamGenerate(t *testing.T, routerHTTP, body string) []int {
	t.Helper()
	resp, err := http.Post(routerHTTP+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tokens []int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Index *int   `json:"index"`
			Token int    `json:"token"`
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if line.Error != "" {
				t.Fatalf("stream trailer error: %s", line.Error)
			}
			return tokens
		}
		if line.Index == nil || *line.Index != len(tokens) {
			t.Fatalf("line %q: want index %d (dropped or duplicated token)", sc.Text(), len(tokens))
		}
		tokens = append(tokens, line.Token)
	}
	t.Fatalf("stream ended without a done trailer: %v", sc.Err())
	return nil
}

// TestChaosScriptThroughDaemon boots the full four-daemon deployment
// with -chaos-script degrade-kv-link on the router and streams the same
// generation during and after the fault window: every stream must carry
// the full token count, all must be byte-identical, and the injector's
// counters must surface on the router's Prometheus endpoint.
func TestChaosScriptThroughDaemon(t *testing.T) {
	const maxNew = 5
	common := []string{"-addr", "127.0.0.1:0", "-wire", "127.0.0.1:0",
		"-prefill-workers", "1", "-decode-par", "1", "-max-new", "5"}

	preWire, _, _, preDone := bootRole(t, append([]string{"-role", "prefill"}, common...)...)
	decWire, _, _, decDone := bootRole(t, append([]string{"-role", "decode"}, common...)...)
	_, routerHTTP, routerOut, routerDone := bootRole(t,
		"-role", "router", "-addr", "127.0.0.1:0",
		"-peer-prefills", preWire,
		"-peer-decodes", decWire,
		"-max-new", "5",
		"-chaos-script", "degrade-kv-link", "-chaos-seed", "7")

	if out := routerOut.String(); !strings.Contains(out, `chaos script "degrade-kv-link"`) {
		t.Fatalf("router did not announce the chaos script:\n%s", out)
	}

	const body = `{"prompt":[5,6,7,8],"max_new_tokens":5,"seed":3}`
	var streams [][]int
	// Two rounds inside the fault window (the script degrades every link
	// from t=0), then one after the 500ms heal.
	streams = append(streams, streamGenerate(t, routerHTTP, body))
	streams = append(streams, streamGenerate(t, routerHTTP, body))
	time.Sleep(600 * time.Millisecond)
	streams = append(streams, streamGenerate(t, routerHTTP, body))

	for i, s := range streams {
		if len(s) != maxNew {
			t.Fatalf("stream %d: %d tokens, want %d", i, len(s), maxNew)
		}
		for j := range s {
			if s[j] != streams[0][j] {
				t.Fatalf("stream %d token %d = %d diverged from stream 0 (%v vs %v)",
					i, j, s[j], streams[i], streams[0])
			}
		}
	}

	// The injector's counters ride the router's Prometheus endpoint.
	resp, err := http.Get(routerHTTP + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"chaos_dials_total", "chaos_ops_delayed_total", "breaker_state{replica="} {
		if !strings.Contains(string(b), series) {
			t.Fatalf("router /metrics missing %q:\n%s", series, b)
		}
	}
	// The in-window rounds crossed degraded links, so the latency
	// counter must have moved.
	if strings.Contains(string(b), "chaos_ops_delayed_total 0\n") {
		t.Fatalf("no operations were delayed during the fault window:\n%s", b)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{
		"prefill": preDone, "decode": decDone, "router": routerDone,
	} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exit: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not drain after SIGTERM", name)
		}
	}
}
