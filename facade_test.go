package hack_test

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/hackkv/hack"
	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
	"github.com/hackkv/hack/internal/workload"
)

// TestEngineRunMatchesSim asserts the public facade is a zero-cost
// veneer: Engine.Run produces byte-identical Result stats to driving
// internal/sim directly with the same configuration and trace.
func TestEngineRunMatchesSim(t *testing.T) {
	reqs, err := hack.GenerateTrace("Cocktail", 0.5, 40, 42)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := hack.New(
		hack.WithModel("L"),
		hack.WithGPU("A10G"),
		hack.WithMethod("HACK"),
		hack.WithReplicas(5, 4),
		hack.WithPipeline(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(context.Background(), hack.Workload{Trace: reqs})
	if err != nil {
		t.Fatal(err)
	}

	cm, err := cluster.NewCostModel(model.Llama70B(), cluster.A10G(), cluster.A100(),
		cluster.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(sim.Config{
		CM: cm, Method: cluster.DefaultHACK(),
		PrefillReplicas: 5, DecodeReplicas: 4,
		MaxBatch: 256, MemCapFrac: 0.95, Pipeline: true,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Error("Engine.Run request stats differ from sim.Run")
	}
	if got.PeakMemFrac != want.PeakMemFrac || got.SwappedCount != want.SwappedCount {
		t.Errorf("Engine.Run aggregates (%v, %d) differ from sim.Run (%v, %d)",
			got.PeakMemFrac, got.SwappedCount, want.PeakMemFrac, want.SwappedCount)
	}
}

// TestEngineTraceMatchesWorkload asserts generated traces match the
// internal generator, including the model-context capping.
func TestEngineTraceMatchesWorkload(t *testing.T) {
	eng, err := hack.New(hack.WithModel("F"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Trace(hack.Workload{Dataset: "arXiv", RPS: 0.5, Requests: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := workload.ByName("arXiv")
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.Trace(ds.CappedTo(model.Falcon180B().MaxContext), 0.5, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Engine.Trace differs from workload.Trace with capped dataset")
	}
}

// runSmall simulates a short trace on a configured engine.
func runSmall(t *testing.T, w hack.Workload, opts ...hack.Option) *hack.Result {
	t.Helper()
	eng, err := hack.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != w.Requests {
		t.Fatalf("%d results, want %d", len(res.Requests), w.Requests)
	}
	return res
}

func smallWorkload() hack.Workload {
	return hack.Workload{Dataset: "Cocktail", RPS: 0.4, Requests: 10, Seed: 1}
}

// TestEveryMethodSimulates drives each method registry entry end to end.
func TestEveryMethodSimulates(t *testing.T) {
	for _, name := range hack.Methods() {
		t.Run(name, func(t *testing.T) {
			m, err := hack.MethodNamed(name)
			if err != nil {
				t.Fatal(err)
			}
			if m.Name == "" {
				t.Fatal("empty method profile")
			}
			runSmall(t, smallWorkload(), hack.WithMethod(name))
		})
	}
}

// TestEveryDatasetSimulates drives each dataset registry entry.
func TestEveryDatasetSimulates(t *testing.T) {
	for _, name := range hack.Datasets() {
		t.Run(name, func(t *testing.T) {
			ds, err := hack.DatasetNamed(name)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Name == "" {
				t.Fatal("empty dataset")
			}
			w := smallWorkload()
			w.Dataset = name
			runSmall(t, w)
		})
	}
}

// TestEveryGPUSimulates drives each GPU registry entry as the prefill
// pool.
func TestEveryGPUSimulates(t *testing.T) {
	for _, name := range hack.GPUs() {
		t.Run(name, func(t *testing.T) {
			in, err := hack.GPUNamed(name)
			if err != nil {
				t.Fatal(err)
			}
			if in.PoolInstances <= 0 {
				t.Errorf("%s has no prefill pool size", name)
			}
			runSmall(t, smallWorkload(), hack.WithGPU(name))
		})
	}
}

// TestEveryModelSimulates drives each catalog model.
func TestEveryModelSimulates(t *testing.T) {
	for _, name := range hack.Models() {
		t.Run(name, func(t *testing.T) {
			spec, err := hack.ModelNamed(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			runSmall(t, smallWorkload(), hack.WithModel(name))
		})
	}
}

// TestLegacySpellingsResolve pins the pre-registry CLI spellings: every
// name the old switch-based MethodByName / workload.ByName /
// cluster.ByGPUName / model.ByShortName accepted must still resolve.
func TestLegacySpellingsResolve(t *testing.T) {
	for _, name := range []string{"Baseline", "CacheGen", "KVQuant", "HACK",
		"HACK/SE", "HACK/RQE", "HACK32", "HACK128", "HACK-INT4", "FP4", "FP6", "FP8",
		"baseline", "cachegen", "kvquant", "hack", "hack/se", "hack-int4", "fp8"} {
		if _, err := hack.MethodNamed(name); err != nil {
			t.Errorf("method %q: %v", name, err)
		}
	}
	for _, name := range []string{"IMDb", "arXiv", "Cocktail", "HumanEval"} {
		if _, err := hack.DatasetNamed(name); err != nil {
			t.Errorf("dataset %q: %v", name, err)
		}
	}
	for _, name := range []string{"A10G", "V100", "T4", "L4", "A100"} {
		if _, err := hack.GPUNamed(name); err != nil {
			t.Errorf("GPU %q: %v", name, err)
		}
	}
	for _, name := range []string{"M", "P", "Y", "L", "F", "Llama-3.1 70B"} {
		if _, err := hack.ModelNamed(name); err != nil {
			t.Errorf("model %q: %v", name, err)
		}
	}
}

// TestUnknownNamesListValid asserts unknown-name errors enumerate the
// valid spellings — the registry behavior the CLI usage errors rely on.
func TestUnknownNamesListValid(t *testing.T) {
	if _, err := hack.MethodNamed("nope"); err == nil ||
		!strings.Contains(err.Error(), "valid:") || !strings.Contains(err.Error(), "CacheGen") {
		t.Errorf("method error does not list valid names: %v", err)
	}
	if _, err := hack.DatasetNamed("nope"); err == nil || !strings.Contains(err.Error(), "Cocktail") {
		t.Errorf("dataset error does not list valid names: %v", err)
	}
	if _, err := hack.GPUNamed("H100"); err == nil || !strings.Contains(err.Error(), "A10G") {
		t.Errorf("GPU error does not list valid names: %v", err)
	}
	if _, err := hack.ModelNamed("Z"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("model error does not list valid names: %v", err)
	}
	if _, err := hack.ExperimentNamed("fig99"); err == nil || !strings.Contains(err.Error(), "fig9") {
		t.Errorf("experiment error does not list valid names: %v", err)
	}
	if _, err := hack.New(hack.WithMethod("nope")); err == nil {
		t.Error("New accepted unknown method")
	}
}

// TestStreamingCallback asserts Run streams exactly the stats it
// returns, in completion order.
func TestStreamingCallback(t *testing.T) {
	var streamed []hack.RequestStats
	eng, err := hack.New(hack.WithStream(func(r hack.RequestStats) {
		streamed = append(streamed, r)
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, res.Requests) {
		t.Errorf("streamed %d stats, result has %d; contents differ", len(streamed), len(res.Requests))
	}
}

// TestRunCancellation asserts a canceled context aborts the simulation.
func TestRunCancellation(t *testing.T) {
	eng, err := hack.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, smallWorkload()); err == nil {
		t.Error("canceled run succeeded")
	}
}

// TestEngineOptionValidation covers the non-registry option errors.
func TestEngineOptionValidation(t *testing.T) {
	bad := []hack.Option{
		hack.WithReplicas(0, 4),
		hack.WithMaxBatch(0),
		hack.WithMemCapFrac(0),
		hack.WithMemCapFrac(1.5),
	}
	for i, opt := range bad {
		if _, err := hack.New(opt); err == nil {
			t.Errorf("option %d accepted invalid value", i)
		}
	}
	// A custom model without a Table 3 parallelism entry fails at New.
	if _, err := hack.New(hack.WithModelSpec(hack.ModelSpec{
		Name: "toy", ShortName: "T", Layers: 2, Hidden: 64,
		Heads: 2, KVHeads: 2, HeadDim: 32, MLPDim: 128, Vocab: 128, MaxContext: 4096,
	})); err == nil {
		t.Error("model without parallelism entry accepted")
	}
}

// TestExperimentRegistry pins the experiment catalog and runs the
// cheapest entry through the public runner.
func TestExperimentRegistry(t *testing.T) {
	ids := hack.Experiments()
	if len(ids) != 24 {
		t.Errorf("%d experiments, want 24", len(ids))
	}
	if ids[0] != "fig1a" || ids[len(ids)-1] != "cost" {
		t.Errorf("unexpected experiment order: %v", ids)
	}
	tb, err := hack.RunExperiment("cost", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Error("cost experiment returned no rows")
	}
}

// TestKernelIntoAndParallelismFacade exercises the destination-reuse
// kernel surface and the engine's kernel-parallelism threading: the Into
// variants must match the allocating calls and the scalar reference bit
// for bit at every parallelism level, and HACKAttentionConfig must carry
// the method profile and the WithKernelParallelism knob.
func TestKernelIntoAndParallelismFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q8 := hack.QuantConfig{Bits: 8, Partition: 32, Rounding: hack.NearestRounding}
	k2 := hack.QuantConfig{Bits: 2, Partition: 32, Rounding: hack.NearestRounding}
	a, err := hack.Quantize(hack.RandNormal(rng, 3, 96, 1), hack.AlongCols, q8)
	if err != nil {
		t.Fatal(err)
	}
	kT, err := hack.Quantize(hack.RandNormal(rng, 40, 96, 1), hack.AlongCols, k2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hack.Quantize(hack.RandNormal(rng, 96, 12, 1), hack.AlongRows, k2)
	if err != nil {
		t.Fatal(err)
	}

	refTB, refOps := hack.MatMulTransBScalar(a, kT, hack.DefaultMatMulOptions())
	refMM, _ := hack.MatMulScalar(a, b, hack.DefaultMatMulOptions())
	dst := hack.NewMatrix(0, 0)
	for _, par := range []int{0, 1, 3} {
		opt := hack.DefaultMatMulOptions()
		opt.Parallelism = par
		ops := hack.MatMulTransBInto(dst, a, kT, opt)
		if d := hack.MaxAbsDiff(dst, refTB); d != 0 {
			t.Errorf("par=%d: MatMulTransBInto differs from scalar by %v", par, d)
		}
		if ops != refOps {
			t.Errorf("par=%d: ops %+v != scalar %+v", par, ops, refOps)
		}
		hack.MatMulInto(dst, a, b, opt)
		if d := hack.MaxAbsDiff(dst, refMM); d != 0 {
			t.Errorf("par=%d: MatMulInto differs from scalar by %v", par, d)
		}
	}

	// QuantizeInto reuses storage and matches Quantize.
	qt, err := hack.QuantizeInto(nil, hack.RandNormal(rng, 4, 64, 1), hack.AlongCols, q8)
	if err != nil {
		t.Fatal(err)
	}
	codes := &qt.Codes[0]
	m2 := hack.RandNormal(rng, 4, 64, 1)
	qt2, err := hack.QuantizeInto(qt, m2, hack.AlongCols, q8)
	if err != nil {
		t.Fatal(err)
	}
	if &qt2.Codes[0] != codes {
		t.Error("QuantizeInto reallocated storage for an identical shape")
	}
	want, _ := hack.Quantize(m2, hack.AlongCols, q8)
	if !reflect.DeepEqual(qt2.Codes, want.Codes) || !reflect.DeepEqual(qt2.Sums, want.Sums) {
		t.Error("QuantizeInto differs from Quantize")
	}

	// Engine threading: the derived attention config carries the method's
	// Π / SE / RQE and the engine's parallelism bound.
	eng, err := hack.New(hack.WithMethod("HACK128"), hack.WithKernelParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if eng.KernelParallelism() != 2 {
		t.Errorf("KernelParallelism = %d, want 2", eng.KernelParallelism())
	}
	cfg, err := eng.HACKAttentionConfig(7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pi != 128 || !cfg.SummationElimination || !cfg.RequantizationElimination || cfg.Parallelism != 2 {
		t.Errorf("HACKAttentionConfig = %+v, want Π=128 SE+RQE par=2", cfg)
	}
	base, err := hack.New(hack.WithMethod("Baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.HACKAttentionConfig(7); err == nil {
		t.Error("HACKAttentionConfig accepted a non-homomorphic method")
	}
	if _, err := hack.New(hack.WithKernelParallelism(-1)); err == nil {
		t.Error("negative kernel parallelism accepted")
	}
}
