package hack

import (
	"context"
	"errors"
	"io"
	"net/http"

	"github.com/hackkv/hack/internal/api"
)

// The HTTP layer: every serving role mounts the exact same handler
// stack from internal/api — the bespoke NDJSON /v1/generate stream, the
// OpenAI-compatible /v1/completions, /v1/chat/completions and
// /v1/models routes, /metrics (JSON or Prometheus text under content
// negotiation), and /healthz. The thin adapters below satisfy the api
// package's narrow Generator interface for both the local runtime
// (Server) and the disaggregated router (DisaggServer), so the two
// roles cannot drift apart.

// Handler returns the daemon's full HTTP surface over this server —
// what the hackserved local role serves:
//
//	POST /v1/generate            NDJSON token stream (token-id prompts)
//	POST /v1/completions         OpenAI text completions (JSON or SSE)
//	POST /v1/chat/completions    OpenAI chat completions (JSON or SSE)
//	GET  /v1/models              the served model + registry listing
//	GET  /metrics                JSON, or Prometheus text via Accept/?format
//	GET  /healthz                200 ok / 503 draining
//
// OpenAI-format requests map text through a deterministic tokenizer
// shim; their emitted token ids are byte-identical to the equivalent
// /v1/generate call per (prompt, seed). Client disconnects mid-stream
// cancel the request inside the engine.
func (s *Server) Handler() http.Handler { return api.NewHandler(localGen{s}) }

// Handler returns the identical HTTP surface over this node's router
// (router role): the generation routes proxy over the KV wire with
// load-aware placement and failover, and /metrics reports the
// deployment view. Prefill and decode nodes serve their own /healthz
// and /metrics endpoints instead; a non-router node's Handler rejects
// generation requests.
func (s *DisaggServer) Handler() http.Handler { return api.NewHandler(routerGen{s}) }

// localGen adapts the in-process serving runtime to api.Generator.
type localGen struct{ s *Server }

func (g localGen) Generate(ctx context.Context, req api.Request) (api.Stream, error) {
	st, err := g.s.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (g localGen) Draining() bool   { return g.s.Draining() }
func (g localGen) MetricsJSON() any { return g.s.Metrics() }
func (g localGen) WritePrometheus(w io.Writer) error {
	return g.s.Metrics().WritePrometheus(w, "hackserved")
}
func (g localGen) ModelID() string { return g.s.Model().Name }
func (g localGen) Vocab() int      { return g.s.Model().Vocab }

// routerGen adapts a disaggregated router node to api.Generator.
type routerGen struct{ s *DisaggServer }

func (g routerGen) Generate(ctx context.Context, req api.Request) (api.Stream, error) {
	st, err := g.s.Submit(ctx, RoutedRequest{
		Prompt: req.Prompt, MaxNewTokens: req.MaxNewTokens, EOS: req.EOS, Seed: req.Seed,
	})
	if err != nil {
		return nil, classifyRouted(err)
	}
	rs := &routedTokenStream{st: st, out: make(chan GenToken)}
	go rs.pump(ctx)
	return rs, nil
}

func (g routerGen) Draining() bool   { return false }
func (g routerGen) MetricsJSON() any { return g.s.Report() }
func (g routerGen) WritePrometheus(w io.Writer) error {
	return g.s.WritePrometheus(w)
}
func (g routerGen) ModelID() string { return g.s.Model().Name }
func (g routerGen) Vocab() int      { return g.s.Model().Vocab }

// classifyRouted marks the router's fleet-level failures as 503
// service_unavailable conditions for the shared error classifier; the
// client did nothing wrong when no replica is healthy or a KV transfer
// exhausted its retries. Other errors (validation, draining) pass
// through to the classifier's own mappings.
func classifyRouted(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNoPrefill):
		return api.Unavailable("no_prefill", err)
	case errors.Is(err, ErrNoReplicas):
		return api.Unavailable("no_replicas", err)
	case errors.Is(err, ErrTransferFailed):
		return api.Unavailable("transfer_failed", err)
	}
	return err
}

// routedTokenStream bridges a RoutedStream (wire TokenMsg frames) to
// the api.Stream the shared handler consumes. pump forwards in order
// and exits when the request's context is cancelled — the router seals
// the underlying stream on cancellation, so the drain terminates and
// no goroutine outlives the request.
type routedTokenStream struct {
	st  *RoutedStream
	out chan GenToken
}

func (r *routedTokenStream) Tokens() <-chan GenToken { return r.out }

func (r *routedTokenStream) Err() error { return classifyRouted(r.st.Err()) }

func (r *routedTokenStream) pump(ctx context.Context) {
	defer close(r.out)
	for tok := range r.st.Tokens() {
		select {
		case r.out <- GenToken{Index: tok.Index, ID: tok.ID}:
		case <-ctx.Done():
			// Client gone: discard the remainder so the router's buffered
			// sender finishes, then let the stream close.
			for range r.st.Tokens() {
				continue
			}
			return
		}
	}
}
