package hack_test

// One benchmark per table/figure of the paper's evaluation: each runs
// the corresponding experiment end to end at reduced settings, so
// `go test -bench=.` regenerates every result and reports how long the
// regeneration takes. The full-size runs are `go run ./cmd/hackbench`.

import (
	"testing"

	"github.com/hackkv/hack/internal/experiments"
)

func benchPerf(b *testing.B, fn func(experiments.Settings) (*experiments.Table, error)) {
	b.Helper()
	s := experiments.Quick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(s); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAcc(b *testing.B, fn func(experiments.AccuracySettings) (*experiments.Table, error)) {
	b.Helper()
	a := experiments.QuickAccuracy()
	a.Trials = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1a(b *testing.B)     { benchPerf(b, experiments.Fig1a) }
func BenchmarkFig1b(b *testing.B)     { benchPerf(b, experiments.Fig1b) }
func BenchmarkFig1c(b *testing.B)     { benchPerf(b, experiments.Fig1c) }
func BenchmarkFig1d(b *testing.B)     { benchPerf(b, experiments.Fig1d) }
func BenchmarkFig2(b *testing.B)      { benchPerf(b, experiments.Fig2) }
func BenchmarkFig3(b *testing.B)      { benchPerf(b, experiments.Fig3) }
func BenchmarkFig4(b *testing.B)      { benchPerf(b, experiments.Fig4) }
func BenchmarkFP48(b *testing.B)      { benchPerf(b, experiments.FP48) }
func BenchmarkFig9(b *testing.B)      { benchPerf(b, experiments.Fig9) }
func BenchmarkFig10(b *testing.B)     { benchPerf(b, experiments.Fig10) }
func BenchmarkTable5(b *testing.B)    { benchPerf(b, experiments.Table5) }
func BenchmarkFig11(b *testing.B)     { benchPerf(b, experiments.Fig11) }
func BenchmarkFig12(b *testing.B)     { benchPerf(b, experiments.Fig12) }
func BenchmarkFig13(b *testing.B)     { benchPerf(b, experiments.Fig13) }
func BenchmarkTable8JCT(b *testing.B) { benchPerf(b, experiments.Table8JCT) }
func BenchmarkFig14(b *testing.B)     { benchPerf(b, experiments.Fig14) }

func BenchmarkTable6(b *testing.B)          { benchAcc(b, experiments.Table6) }
func BenchmarkFidelityLadder(b *testing.B)  { benchAcc(b, experiments.FidelityLadder) }
func BenchmarkTable7(b *testing.B)          { benchAcc(b, experiments.Table7) }
func BenchmarkTable8Accuracy(b *testing.B)  { benchAcc(b, experiments.Table8Accuracy) }
func BenchmarkSEMemory(b *testing.B)        { benchAcc(b, experiments.SEMemory) }
func BenchmarkLogitDistortion(b *testing.B) { benchAcc(b, experiments.LogitDistortion) }
func BenchmarkExtINT4(b *testing.B)         { benchPerf(b, experiments.ExtINT4) }
func BenchmarkCostTable(b *testing.B)       { benchPerf(b, experiments.CostTable) }
