package hack

import (
	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/experiments"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
	"github.com/hackkv/hack/internal/workload"
)

// The registries: every serving method, dataset, GPU instance, model and
// experiment is a named entry self-registered by its defining package.
// Names are matched case-insensitively and listed in the paper's
// presentation order; resolving an unknown name returns an error that
// spells out every valid name.

// Methods returns the serving-method names (Baseline, CacheGen, KVQuant,
// HACK, HACK/SE, HACK/RQE, HACK32, HACK128, HACK-INT4, FP4, FP6, FP8).
func Methods() []string { return cluster.MethodRegistry.Names() }

// MethodNamed resolves a serving-method profile by name.
func MethodNamed(name string) (Method, error) { return cluster.MethodRegistry.Lookup(name) }

// Datasets returns the workload names (IMDb, arXiv, Cocktail,
// HumanEval).
func Datasets() []string { return workload.Registry.Names() }

// DatasetNamed resolves a dataset by name.
func DatasetNamed(name string) (Dataset, error) { return workload.Registry.Lookup(name) }

// GPUs returns the accelerator tags of the Table 2 instances (A10G,
// V100, T4, L4, A100).
func GPUs() []string { return cluster.GPURegistry.Names() }

// GPUNamed resolves a cloud instance by accelerator tag.
func GPUNamed(name string) (Instance, error) { return cluster.GPURegistry.Lookup(name) }

// Models returns the catalog model tags (M, P, Y, L, F); full display
// names also resolve.
func Models() []string { return model.Registry.Names() }

// ModelNamed resolves a catalog model by tag or full name.
func ModelNamed(name string) (ModelSpec, error) { return model.Registry.Lookup(name) }

// EvaluatedMethods returns the four methods of the paper's headline
// figures in presentation order.
func EvaluatedMethods() []Method { return cluster.EvaluatedMethods() }

// Schedulers returns the request-placement policy names
// (shortest-queue, round-robin, fewest-requests, load-aware, slo).
func Schedulers() []string { return sim.SchedulerNames() }

// SchedulerNamed resolves a scheduler by display name,
// case-insensitively and ignoring hyphens (so "loadaware" works);
// unknown names return an error listing the valid spellings.
func SchedulerNamed(name string) (Scheduler, error) { return sim.ParseScheduler(name) }

// ResultTable is one regenerated paper table or figure; print it with
// Fprint or export it with WriteCSV.
type ResultTable = experiments.Table

// Experiments returns the experiment IDs in the paper's presentation
// order (fig1a ... cost); each regenerates one table or figure.
func Experiments() []string { return experiments.Registry.Names() }

// ExperimentNamed resolves an experiment ID (case-insensitive) and
// returns its canonical spelling, or an error listing the valid IDs.
func ExperimentNamed(id string) (string, error) {
	e, err := experiments.Registry.Lookup(id)
	if err != nil {
		return "", err
	}
	return e.ID, nil
}

// RunExperiment regenerates one paper table or figure by ID. Quick runs
// use reduced trace and trial counts.
func RunExperiment(id string, quick bool) (*ResultTable, error) {
	e, err := experiments.Registry.Lookup(id)
	if err != nil {
		return nil, err
	}
	s, a := experiments.Default(), experiments.DefaultAccuracy()
	if quick {
		s, a = experiments.Quick(), experiments.QuickAccuracy()
	}
	return e.Run(s, a)
}
